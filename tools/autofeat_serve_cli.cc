// autofeat_serve_cli — long-lived AutoFeat daemon over a data lake.
//
// Loads a lake, stands up the serving layer (serve::LakeService) and then
// executes newline-delimited commands from stdin (interactive) or from a
// --script file. Mutations maintain the DRG and caches incrementally —
// only the touched table is re-matched and untouched cache entries carry
// over — so a mutate/query session never pays a cold rebuild, while every
// query sees a state byte-identical to one.
//
// Usage:
//   autofeat_serve_cli --lake DIR [--lake-format csv|columnar]
//                      [--drg-matcher all_pairs|lsh] [--threshold F]
//                      [--threads N] [--scheduler forkjoin|morsel]
//                      [--memory-budget-mb N] [--script FILE]
//                      [--metrics-out FILE.json] [--trace-out FILE.json]
//                      [--event-log FILE.jsonl] [--metrics-text FILE]
//                      [--slow-query-ms N]
//
// Commands (one per line; '#' starts a comment):
//   add FILE.csv [NAME]      add a table (NAME defaults to the file stem)
//   append TABLE FILE.csv    append rows; the schema must match exactly
//   drop TABLE               drop a table
//   discover BASE LABEL      rank transitive join paths from BASE
//   augment BASE LABEL [MODEL] [OUT.csv]
//                            full augmentation; optionally save the table
//   tables                   list tables at the current epoch
//   epoch                    print the current epoch
//   stats [--json]           serving summary (or the full JSON obs report)
//   lineage                  per-epoch provenance records as JSON
//   metrics                  Prometheus text exposition of every metric
//   quit                     exit
//
// Observability sinks, all written at exit: --metrics-out (JSON obs
// report), --trace-out (Chrome/Perfetto trace with one span tree per
// command, per-query spans and enqueue->execute flow arrows),
// --event-log (structured JSONL: query start/end, mutation apply, epoch
// publish, cache evict/rebuild, slow queries). --slow-query-ms sets the
// slow-query event threshold (0 = disabled; note that which queries cross
// a nonzero threshold is wall-clock dependent, so replay determinism of
// the event log holds at the default 0).
//
// A failed command (bad file, duplicate table, schema mismatch, ...)
// prints the error and leaves the service state untouched; the daemon
// keeps running. The exit code is 0 when every command succeeded.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "discovery/data_lake.h"
#include "graph/path_format.h"
#include "ml/trainer.h"
#include "obs/chrome_trace.h"
#include "obs/event_log.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/lake_service.h"
#include "table/csv.h"
#include "util/scheduler.h"

namespace {

using namespace autofeat;

struct CliOptions {
  std::string lake_dir;
  std::string lake_format = "csv";
  std::string drg_matcher = "lsh";
  std::string scheduler = "morsel";
  std::string script;
  std::string metrics_output;
  std::string trace_output;
  std::string event_log_output;
  std::string metrics_text_output;
  double threshold = 0.55;
  size_t threads = 1;
  size_t memory_budget_mb = 0;
  size_t slow_query_ms = 0;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: autofeat_serve_cli --lake DIR [--lake-format csv|columnar]\n"
      "                          [--drg-matcher all_pairs|lsh]\n"
      "                          [--threshold F] [--threads N]\n"
      "                          [--scheduler forkjoin|morsel]\n"
      "                          [--memory-budget-mb N] [--script FILE]\n"
      "                          [--metrics-out FILE.json]\n"
      "                          [--trace-out FILE.json]\n"
      "                          [--event-log FILE.jsonl]\n"
      "                          [--metrics-text FILE]\n"
      "                          [--slow-query-ms N]\n"
      "commands (stdin or --script, one per line, '#' comments):\n"
      "  add FILE.csv [NAME]    add a table (NAME defaults to the stem)\n"
      "  append TABLE FILE.csv  append rows (schema must match exactly)\n"
      "  drop TABLE             drop a table\n"
      "  discover BASE LABEL    rank transitive join paths from BASE\n"
      "  augment BASE LABEL [lightgbm|rf|extratrees|xgboost|knn|logreg]\n"
      "                    [OUT.csv]\n"
      "  tables | epoch | stats [--json] | lineage | metrics | quit\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--lake") {
      const char* v = next();
      if (!v) return false;
      options->lake_dir = v;
    } else if (arg == "--lake-format") {
      const char* v = next();
      if (!v) return false;
      options->lake_format = v;
    } else if (arg == "--drg-matcher") {
      const char* v = next();
      if (!v) return false;
      options->drg_matcher = v;
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (!v) return false;
      options->scheduler = v;
    } else if (arg == "--script") {
      const char* v = next();
      if (!v) return false;
      options->script = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      options->metrics_output = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      options->trace_output = v;
    } else if (arg == "--event-log") {
      const char* v = next();
      if (!v) return false;
      options->event_log_output = v;
    } else if (arg == "--metrics-text") {
      const char* v = next();
      if (!v) return false;
      options->metrics_text_output = v;
    } else if (arg == "--slow-query-ms") {
      const char* v = next();
      if (!v) return false;
      options->slow_query_ms = static_cast<size_t>(std::atol(v));
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return false;
      options->threshold = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      options->threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--memory-budget-mb") {
      const char* v = next();
      if (!v) return false;
      options->memory_budget_mb = static_cast<size_t>(std::atol(v));
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->lake_dir.empty();
}

Result<ml::ModelKind> ParseModel(const std::string& name) {
  if (name == "lightgbm") return ml::ModelKind::kLightGbm;
  if (name == "rf") return ml::ModelKind::kRandomForest;
  if (name == "extratrees") return ml::ModelKind::kExtraTrees;
  if (name == "xgboost") return ml::ModelKind::kXgBoost;
  if (name == "knn") return ml::ModelKind::kKnn;
  if (name == "logreg") return ml::ModelKind::kLogRegL1;
  return Status::InvalidArgument(
      "unknown model: " + name +
      " (valid values: lightgbm, rf, extratrees, xgboost, knn, logreg)");
}

std::string FileStem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  return dot == std::string::npos ? stem : stem.substr(0, dot);
}

/// Executes one command line. Returns false on a failed command (the
/// daemon keeps running either way); sets *quit on "quit". A non-null
/// `tracer` records every query's span tree (--trace-out).
bool RunCommand(serve::LakeService* service, const obs::MetricsRegistry& metrics,
                obs::Tracer* tracer, const std::string& line, bool* quit) {
  std::istringstream fields(line);
  std::string command;
  if (!(fields >> command) || command[0] == '#') return true;

  auto fail = [](const Status& status, const char* what) {
    std::fprintf(stderr, "error: %s: %s\n", what,
                 status.ToString().c_str());
    return false;
  };

  if (command == "quit" || command == "exit") {
    *quit = true;
    return true;
  }
  if (command == "epoch") {
    std::printf("epoch %llu\n",
                static_cast<unsigned long long>(service->epoch()));
    return true;
  }
  if (command == "tables") {
    serve::LakeService::SnapshotPin snap = service->snapshot();
    std::printf("epoch %llu: %zu tables\n",
                static_cast<unsigned long long>(snap->epoch),
                snap->lake.num_tables());
    for (const std::string& name : snap->lake.TableNames()) {
      const Table* table = snap->lake.GetTable(name).ValueOrDie();
      std::printf("  %-24s %zu cols x %zu rows\n", name.c_str(),
                  table->num_columns(), table->num_rows());
    }
    return true;
  }
  if (command == "stats") {
    std::string flag;
    fields >> flag;
    if (flag == "--json") {
      std::printf("%s\n", obs::JsonReport(metrics, tracer).c_str());
      return true;
    }
    serve::LakeService::SnapshotPin snap = service->snapshot();
    std::printf("epoch %llu: %zu tables, %zu DRG edges\n",
                static_cast<unsigned long long>(snap->epoch),
                snap->lake.num_tables(), snap->drg.num_edges());
    auto ms = [&](const char* name, double q) {
      return static_cast<double>(metrics.QuantileValueAt(name, q)) / 1e6;
    };
    std::printf("  queries   %llu (p50 %.3f ms, p99 %.3f ms)\n",
                static_cast<unsigned long long>(
                    metrics.CounterValue("serve.queries")),
                ms("serve.query_latency_ns", 0.50),
                ms("serve.query_latency_ns", 0.99));
    std::printf("  mutations %llu ok, %llu failed (p50 %.3f ms, p99 %.3f "
                "ms)\n",
                static_cast<unsigned long long>(
                    metrics.CounterValue("serve.mutations")),
                static_cast<unsigned long long>(
                    metrics.CounterValue("serve.mutations_failed")),
                ms("serve.mutation_latency_ns", 0.50),
                ms("serve.mutation_latency_ns", 0.99));
    std::printf("  slow queries %llu\n",
                static_cast<unsigned long long>(
                    metrics.CounterValue("serve.slow_queries")));
    return true;
  }
  if (command == "lineage") {
    std::printf("%s", service->LineageJson().c_str());
    return true;
  }
  if (command == "metrics") {
    std::printf("%s", obs::PrometheusText(metrics).c_str());
    return true;
  }
  if (command == "add") {
    std::string path, name;
    if (!(fields >> path)) {
      std::fprintf(stderr, "usage: add FILE.csv [NAME]\n");
      return false;
    }
    fields >> name;
    auto table = ReadCsvFile(path);
    if (!table.ok()) return fail(table.status(), "add");
    table->set_name(name.empty() ? FileStem(path) : name);
    std::string label = table->name();
    auto epoch = service->AddTable(table.MoveValue());
    if (!epoch.ok()) return fail(epoch.status(), "add");
    std::printf("epoch %llu: added %s\n",
                static_cast<unsigned long long>(*epoch), label.c_str());
    return true;
  }
  if (command == "append") {
    std::string table, path;
    if (!(fields >> table >> path)) {
      std::fprintf(stderr, "usage: append TABLE FILE.csv\n");
      return false;
    }
    auto rows = ReadCsvFile(path);
    if (!rows.ok()) return fail(rows.status(), "append");
    auto epoch = service->AppendRows(table, *rows);
    if (!epoch.ok()) return fail(epoch.status(), "append");
    std::printf("epoch %llu: appended %zu rows to %s\n",
                static_cast<unsigned long long>(*epoch), rows->num_rows(),
                table.c_str());
    return true;
  }
  if (command == "drop") {
    std::string table;
    if (!(fields >> table)) {
      std::fprintf(stderr, "usage: drop TABLE\n");
      return false;
    }
    auto epoch = service->DropTable(table);
    if (!epoch.ok()) return fail(epoch.status(), "drop");
    std::printf("epoch %llu: dropped %s\n",
                static_cast<unsigned long long>(*epoch), table.c_str());
    return true;
  }
  if (command == "discover") {
    std::string base, label;
    if (!(fields >> base >> label)) {
      std::fprintf(stderr, "usage: discover BASE LABEL\n");
      return false;
    }
    // Command-ingest span: the query's serve.discover span (and its flow
    // link to execution) nests under it in the exported trace.
    obs::ScopedSpan cmd(tracer, "serve.command");
    auto out = service->Discover(base, label, /*metrics=*/nullptr, tracer);
    if (!out.ok()) return fail(out.status(), "discover");
    serve::LakeService::SnapshotPin snap = service->snapshot();
    std::printf("epoch %llu: %zu ranked path(s), %zu explored in %.3fs\n",
                static_cast<unsigned long long>(out->epoch),
                out->discovery.ranked.size(), out->discovery.paths_explored,
                out->discovery.total_seconds);
    for (const RankedPath& ranked : out->discovery.ranked) {
      std::printf("  %7.3f  %s (%zu feature(s))\n", ranked.score,
                  FormatJoinPath(snap->drg, ranked.path).c_str(),
                  ranked.selected_features.size());
    }
    return true;
  }
  if (command == "augment") {
    std::string base, label, model_name = "lightgbm", output;
    if (!(fields >> base >> label)) {
      std::fprintf(stderr, "usage: augment BASE LABEL [MODEL] [OUT.csv]\n");
      return false;
    }
    fields >> model_name >> output;
    auto model = ParseModel(model_name);
    if (!model.ok()) return fail(model.status(), "augment");
    obs::ScopedSpan cmd(tracer, "serve.command");
    auto out =
        service->Augment(base, label, *model, /*metrics=*/nullptr, tracer);
    if (!out.ok()) return fail(out.status(), "augment");
    serve::LakeService::SnapshotPin snap = service->snapshot();
    std::printf(
        "epoch %llu: accuracy %.4f via %s (%zu feature(s), %.3fs)\n",
        static_cast<unsigned long long>(out->epoch),
        out->augmentation.accuracy,
        FormatJoinPath(snap->drg, out->augmentation.best_path.path).c_str(),
        out->augmentation.best_path.selected_features.size(),
        out->augmentation.total_seconds);
    if (!output.empty()) {
      Status write = WriteCsvFile(out->augmentation.augmented, output);
      if (!write.ok()) return fail(write, "augment");
      std::printf("wrote %s\n", output.c_str());
    }
    return true;
  }
  std::fprintf(stderr,
               "unknown command: %s (valid: add, append, drop, discover, "
               "augment, tables, epoch, stats, lineage, metrics, quit)\n",
               command.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  auto format = ParseLakeFormat(options.lake_format);
  if (!format.ok()) {
    std::fprintf(stderr, "--lake-format: %s\n",
                 format.status().message().c_str());
    return 2;
  }
  auto scheduler = ParseScheduler(options.scheduler);
  if (!scheduler.ok()) {
    std::fprintf(stderr, "--scheduler: %s\n",
                 scheduler.status().message().c_str());
    return 2;
  }

  serve::ServeOptions serve_options;
  serve_options.match.threshold = options.threshold;
  serve_options.match.memory_budget_bytes =
      options.memory_budget_mb * (size_t{1} << 20);
  if (options.drg_matcher == "lsh") {
    serve_options.match.candidate_mode = CandidateMode::kLsh;
  } else if (options.drg_matcher != "all_pairs") {
    std::fprintf(stderr,
                 "unknown --drg-matcher: %s (valid values: all_pairs, lsh)\n",
                 options.drg_matcher.c_str());
    return 2;
  }
  serve_options.config.num_threads = options.threads;
  serve_options.config.scheduler = *scheduler;
  serve_options.config.memory_budget_bytes =
      serve_options.match.memory_budget_bytes;
  serve_options.slow_query_threshold_ns =
      options.slow_query_ms * uint64_t{1000000};

  auto lake = DataLake::FromDirectory(options.lake_dir, *format);
  lake.status().Abort("loading lake");
  std::printf("loaded %zu tables from %s\n", lake->num_tables(),
              options.lake_dir.c_str());

  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  obs::Tracer* tracer_ptr = options.trace_output.empty() ? nullptr : &tracer;
  obs::EventLog event_log;
  obs::EventLog* event_log_ptr =
      options.event_log_output.empty() ? nullptr : &event_log;
  auto service = serve::LakeService::Create(lake.MoveValue(), serve_options,
                                            &metrics, tracer_ptr,
                                            event_log_ptr);
  service.status().Abort("starting lake service");
  {
    serve::LakeService::SnapshotPin snap = (*service)->snapshot();
    std::printf("serving epoch 0: DRG %zu nodes, %zu edges\n",
                snap->drg.num_nodes(), snap->drg.num_edges());
  }

  std::ifstream script;
  if (!options.script.empty()) {
    script.open(options.script);
    if (!script) {
      std::fprintf(stderr, "cannot open --script %s\n",
                   options.script.c_str());
      return 2;
    }
  }
  std::istream& input = options.script.empty() ? std::cin : script;
  const bool interactive = options.script.empty();

  int failed = 0;
  bool quit = false;
  std::string line;
  if (interactive) std::printf("> ");
  while (!quit && std::getline(input, line)) {
    if (!RunCommand(service->get(), metrics, tracer_ptr, line, &quit)) {
      ++failed;
    }
    if (interactive && !quit) std::printf("> ");
  }

  if (!options.metrics_output.empty()) {
    std::ofstream out(options.metrics_output);
    out << obs::JsonReport(metrics, tracer_ptr);
    std::printf("metrics written to %s\n", options.metrics_output.c_str());
  }
  if (!options.trace_output.empty()) {
    std::ofstream out(options.trace_output);
    out << obs::ChromeTraceJson(tracer);
    std::printf("trace written to %s\n", options.trace_output.c_str());
  }
  if (!options.event_log_output.empty()) {
    if (!event_log.WriteFile(options.event_log_output)) {
      std::fprintf(stderr, "cannot write --event-log %s\n",
                   options.event_log_output.c_str());
      return 1;
    }
    std::printf("event log written to %s\n",
                options.event_log_output.c_str());
  }
  if (!options.metrics_text_output.empty()) {
    std::ofstream out(options.metrics_text_output);
    out << obs::PrometheusText(metrics);
    std::printf("metrics text written to %s\n",
                options.metrics_text_output.c_str());
  }
  if (failed > 0) {
    std::fprintf(stderr, "%d command(s) failed\n", failed);
    return 1;
  }
  return 0;
}
