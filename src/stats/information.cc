#include "stats/information.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "stats/discretize.h"
#include "util/simd.h"

namespace autofeat {

namespace {

// Missing-coded rows are excluded from all estimates (pairwise-complete):
// joins null out entire row ranges at once, so "missing" as a category
// would dominate any inter-feature dependence measure.
bool Present(int a) { return a != kMissingBin; }

// The SIMD counting kernels hard-code the missing sentinel.
static_assert(kMissingBin == -1,
              "simd::CountPresent/CountJointPresent mask lanes equal to -1");

// Codes produced by the discretisers are small (<= ~33); the dense path
// covers them. Larger/negative-range codes fall back to hashing.
constexpr int kDenseLimit = 64;

// ---- Reusable per-thread scratch ------------------------------------------
//
// Every scoring call used to allocate its contingency tables (and, on the
// hash path, three unordered_maps) from scratch; under BFS evaluation that
// is several allocations per candidate. One scratch block per worker thread
// amortises them: buffers are sized on first use, reused across candidates
// and morsels, and released when the owning thread (scheduler worker or
// caller) exits.

// Hash-path counter: maps packed code tuples to dense indices in
// first-occurrence order, counts in a flat vector. Two properties matter:
// (a) clear() keeps capacity, so steady-state calls allocate nothing;
// (b) the entropy reduction runs over `counts` in first-occurrence order —
// a pure function of the input sequence — never over the map's bucket
// order, which depends on the container's allocation history and would
// otherwise leak the work-stealing schedule into last-ulp entropy values.
struct HashCounter {
  std::unordered_map<uint64_t, uint32_t> index;
  std::vector<uint32_t> counts;

  void Clear() {
    index.clear();
    counts.clear();
  }
  void Add(uint64_t key) {
    auto [it, inserted] =
        index.try_emplace(key, static_cast<uint32_t>(counts.size()));
    if (inserted) {
      counts.push_back(1);
    } else {
      ++counts[it->second];
    }
  }
  // Plug-in entropy over the accumulated counts (every count is > 0).
  double Entropy(size_t n) const {
    if (n == 0) return 0.0;
    return simd::SumPLogP(counts.data(), counts.size(),
                          static_cast<double>(n));
  }
  // Miller-Madow corrected form; every slot is occupied by construction.
  double EntropyMM(size_t n) const {
    if (n == 0) return 0.0;
    return Entropy(n) + (static_cast<double>(counts.size()) - 1.0) /
                            (2.0 * static_cast<double>(n));
  }
};

struct EntropyScratch {
  std::vector<uint32_t> joint;   // kx*ky cells + one trash slot
  std::vector<uint32_t> cx, cy;  // dense marginals
  HashCounter hx, hy, hxy, hz;   // hash fallback + triple terms
};

EntropyScratch& Scratch() {
  thread_local EntropyScratch scratch;
  return scratch;
}

struct PairEntropies {
  double hx = 0, hy = 0, hxy = 0;
  double hx_mm = 0, hy_mm = 0, hxy_mm = 0;
};

// Miller-Madow correction term over a dense count vector.
double MmTerm(const uint32_t* counts, size_t k, size_t n) {
  if (n == 0) return 0.0;
  return (static_cast<double>(simd::CountNonZero32(counts, k)) - 1.0) /
         (2.0 * static_cast<double>(n));
}

// Dense two-way contingency entropies without copying the inputs: pass 1 is
// a masked min/max over complete rows, pass 2 counts joint cells branch-free
// (incomplete rows land in a trash slot past the table), marginals are then
// row/column sums of the joint table and all three entropies go through the
// vectorised p*log(p) reduction. Returns false when either code range
// exceeds the dense limit.
bool DensePairEntropies(const std::vector<int>& x, const std::vector<int>& y,
                        PairEntropies* out) {
  assert(x.size() == y.size());
  int mm[4] = {INT32_MAX, INT32_MIN, INT32_MAX, INT32_MIN};
  simd::PairMinMaxPresent(x.data(), y.data(), x.size(), mm);
  if (mm[0] > mm[1]) {  // no complete rows
    *out = PairEntropies{};
    return true;
  }
  if (static_cast<int64_t>(mm[1]) - mm[0] >= kDenseLimit ||
      static_cast<int64_t>(mm[3]) - mm[2] >= kDenseLimit) {
    return false;
  }
  const int kx = mm[1] - mm[0] + 1;
  const int ky = mm[3] - mm[2] + 1;
  const size_t cells = static_cast<size_t>(kx) * static_cast<size_t>(ky);

  EntropyScratch& s = Scratch();
  s.joint.assign(cells + 1, 0);
  simd::CountJointPresent(x.data(), y.data(), x.size(), mm[0], mm[2], ky,
                          /*trash=*/cells, s.joint.data());
  const size_t n = x.size() - s.joint[cells];

  s.cx.assign(static_cast<size_t>(kx), 0);
  s.cy.assign(static_cast<size_t>(ky), 0);
  const uint32_t* joint = s.joint.data();
  for (int i = 0; i < kx; ++i) {
    const uint32_t* row = joint + static_cast<size_t>(i) * ky;
    uint32_t row_sum = 0;
    for (int j = 0; j < ky; ++j) {
      row_sum += row[j];
      s.cy[static_cast<size_t>(j)] += row[j];
    }
    s.cx[static_cast<size_t>(i)] = row_sum;
  }

  const double dn = static_cast<double>(n);
  out->hx = simd::SumPLogP(s.cx.data(), static_cast<size_t>(kx), dn);
  out->hy = simd::SumPLogP(s.cy.data(), static_cast<size_t>(ky), dn);
  out->hxy = simd::SumPLogP(joint, cells, dn);
  out->hx_mm = out->hx + MmTerm(s.cx.data(), static_cast<size_t>(kx), n);
  out->hy_mm = out->hy + MmTerm(s.cy.data(), static_cast<size_t>(ky), n);
  out->hxy_mm = out->hxy + MmTerm(joint, cells, n);
  return true;
}

// ---- Hash fallback (arbitrary code ranges) --------------------------------

// Packs small signed codes into tuple keys (bias keeps them non-negative).
uint64_t Pack1(int a) { return static_cast<uint64_t>(a + (1 << 20)); }
uint64_t Pack2(int a, int b) { return (Pack1(a) << 21) | Pack1(b); }
uint64_t Pack3(int a, int b, int c) { return (Pack2(a, b) << 21) | Pack1(c); }

PairEntropies HashPairEntropies(const std::vector<int>& x,
                                const std::vector<int>& y) {
  PairEntropies out;
  EntropyScratch& s = Scratch();
  s.hx.Clear();
  s.hy.Clear();
  s.hxy.Clear();
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i])) continue;
    s.hx.Add(Pack1(x[i]));
    s.hy.Add(Pack1(y[i]));
    s.hxy.Add(Pack2(x[i], y[i]));
    ++n;
  }
  out.hx = s.hx.Entropy(n);
  out.hy = s.hy.Entropy(n);
  out.hxy = s.hxy.Entropy(n);
  out.hx_mm = s.hx.EntropyMM(n);
  out.hy_mm = s.hy.EntropyMM(n);
  out.hxy_mm = s.hxy.EntropyMM(n);
  return out;
}

PairEntropies ComputePairEntropies(const std::vector<int>& x,
                                   const std::vector<int>& y) {
  PairEntropies out;
  if (DensePairEntropies(x, y, &out)) return out;
  return HashPairEntropies(x, y);
}

// Single-vector dense entropy: one masked min/max pass, one counting pass
// into a flat table with a trash slot for missing rows. No joint table, no
// input copy — this is what Entropy(x) used to pay for by reusing the pair
// machinery with y == x.
bool DenseSingleEntropy(const std::vector<int>& x, double* h) {
  int mm[2] = {INT32_MAX, INT32_MIN};
  simd::MinMaxPresent(x.data(), x.size(), mm);
  if (mm[0] > mm[1]) {  // empty or all-missing
    *h = 0.0;
    return true;
  }
  if (static_cast<int64_t>(mm[1]) - mm[0] >= kDenseLimit) return false;
  const size_t k = static_cast<size_t>(mm[1] - mm[0] + 1);
  EntropyScratch& s = Scratch();
  s.cx.assign(k + 1, 0);
  simd::CountPresent(x.data(), x.size(), mm[0], /*trash=*/k, s.cx.data());
  const size_t n = x.size() - s.cx[k];
  *h = simd::SumPLogP(s.cx.data(), k, static_cast<double>(n));
  return true;
}

}  // namespace

double Entropy(const std::vector<int>& x) {
  double h = 0.0;
  if (DenseSingleEntropy(x, &h)) return h;
  EntropyScratch& s = Scratch();
  s.hx.Clear();
  size_t n = 0;
  for (int a : x) {
    if (!Present(a)) continue;
    s.hx.Add(Pack1(a));
    ++n;
  }
  return s.hx.Entropy(n);
}

double JointEntropy(const std::vector<int>& x, const std::vector<int>& y) {
  return ComputePairEntropies(x, y).hxy;
}

double MutualInformation(const std::vector<int>& x,
                         const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropies(x, y);
  return std::max(0.0, e.hx + e.hy - e.hxy);
}

double MutualInformationCorrected(const std::vector<int>& x,
                                  const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropies(x, y);
  return std::max(0.0, e.hx_mm + e.hy_mm - e.hxy_mm);
}

double SymmetricalUncertainty(const std::vector<int>& x,
                              const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropies(x, y);
  if (e.hx + e.hy <= 0.0) return 0.0;
  double mi = std::max(0.0, e.hx + e.hy - e.hxy);
  return 2.0 * mi / (e.hx + e.hy);
}

namespace {

struct TripleEntropies {
  double hxz = 0, hyz = 0, hxyz = 0, hz = 0;
  double hxz_mm = 0, hyz_mm = 0, hxyz_mm = 0, hz_mm = 0;
};

TripleEntropies ComputeTripleEntropies(const std::vector<int>& x,
                                       const std::vector<int>& y,
                                       const std::vector<int>& z) {
  assert(x.size() == y.size() && y.size() == z.size());
  TripleEntropies out;
  EntropyScratch& s = Scratch();
  s.hx.Clear();
  s.hy.Clear();
  s.hxy.Clear();
  s.hz.Clear();
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i]) || !Present(z[i])) continue;
    s.hx.Add(Pack2(x[i], z[i]));
    s.hy.Add(Pack2(y[i], z[i]));
    s.hxy.Add(Pack3(x[i], y[i], z[i]));
    s.hz.Add(Pack1(z[i]));
    ++n;
  }
  out.hxz = s.hx.Entropy(n);
  out.hyz = s.hy.Entropy(n);
  out.hxyz = s.hxy.Entropy(n);
  out.hz = s.hz.Entropy(n);
  out.hxz_mm = s.hx.EntropyMM(n);
  out.hyz_mm = s.hy.EntropyMM(n);
  out.hxyz_mm = s.hxy.EntropyMM(n);
  out.hz_mm = s.hz.EntropyMM(n);
  return out;
}

}  // namespace

double ConditionalMutualInformation(const std::vector<int>& x,
                                    const std::vector<int>& y,
                                    const std::vector<int>& z) {
  TripleEntropies e = ComputeTripleEntropies(x, y, z);
  return std::max(0.0, e.hxz + e.hyz - e.hxyz - e.hz);
}

double ConditionalMutualInformationCorrected(const std::vector<int>& x,
                                             const std::vector<int>& y,
                                             const std::vector<int>& z) {
  TripleEntropies e = ComputeTripleEntropies(x, y, z);
  return std::max(0.0, e.hxz_mm + e.hyz_mm - e.hxyz_mm - e.hz_mm);
}

// ---- Scalar reference implementations -------------------------------------
//
// The pre-SIMD code path, kept verbatim as the differential oracle for
// tests/kernels_test.cc and the before/after axis of bench/kernels.cc.
// Same estimators, independent mechanics: input-copying dense remap,
// size_t counts, std::log, fresh hash maps per call.

namespace reference {

namespace {

double EntropyOfDense(const std::vector<size_t>& counts, size_t n) {
  if (n == 0) return 0.0;
  double h = 0.0;
  double dn = static_cast<double>(n);
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / dn;
    h -= p * std::log(p);
  }
  return h;
}

size_t OccupiedCells(const std::vector<size_t>& counts) {
  size_t k = 0;
  for (size_t c : counts) k += (c != 0);
  return k;
}

double DenseMmTerm(const std::vector<size_t>& counts, size_t n) {
  if (n == 0) return 0.0;
  return (static_cast<double>(OccupiedCells(counts)) - 1.0) /
         (2.0 * static_cast<double>(n));
}

// Remaps arbitrary int codes (missing rows of either input dropped) into
// dense 0..k-1 codes. Returns false if the dense limit is exceeded.
struct DensePair {
  std::vector<int> x, y;  // parallel, remapped, complete rows only
  int kx = 0, ky = 0;
};

bool BuildDensePair(const std::vector<int>& x, const std::vector<int>& y,
                    DensePair* out) {
  assert(x.size() == y.size());
  int min_x = 0, max_x = -1, min_y = 0, max_y = -1;
  bool first = true;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i])) continue;
    if (first) {
      min_x = max_x = x[i];
      min_y = max_y = y[i];
      first = false;
    } else {
      min_x = std::min(min_x, x[i]);
      max_x = std::max(max_x, x[i]);
      min_y = std::min(min_y, y[i]);
      max_y = std::max(max_y, y[i]);
    }
  }
  if (first) {
    out->kx = out->ky = 0;
    return true;
  }
  if (max_x - min_x >= kDenseLimit || max_y - min_y >= kDenseLimit) {
    return false;
  }
  out->kx = max_x - min_x + 1;
  out->ky = max_y - min_y + 1;
  out->x.clear();
  out->y.clear();
  out->x.reserve(x.size());
  out->y.reserve(y.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i])) continue;
    out->x.push_back(x[i] - min_x);
    out->y.push_back(y[i] - min_y);
  }
  return true;
}

PairEntropies DensePairEntropiesRef(const DensePair& p) {
  PairEntropies out;
  size_t n = p.x.size();
  if (n == 0 || p.kx == 0 || p.ky == 0) return out;
  std::vector<size_t> cx(static_cast<size_t>(p.kx), 0);
  std::vector<size_t> cy(static_cast<size_t>(p.ky), 0);
  std::vector<size_t> cxy(static_cast<size_t>(p.kx) * p.ky, 0);
  for (size_t i = 0; i < n; ++i) {
    ++cx[static_cast<size_t>(p.x[i])];
    ++cy[static_cast<size_t>(p.y[i])];
    ++cxy[static_cast<size_t>(p.x[i]) * p.ky + p.y[i]];
  }
  out.hx = EntropyOfDense(cx, n);
  out.hy = EntropyOfDense(cy, n);
  out.hxy = EntropyOfDense(cxy, n);
  out.hx_mm = out.hx + DenseMmTerm(cx, n);
  out.hy_mm = out.hy + DenseMmTerm(cy, n);
  out.hxy_mm = out.hxy + DenseMmTerm(cxy, n);
  return out;
}

double EntropyOfCounts(const std::unordered_map<uint64_t, size_t>& counts,
                       size_t n) {
  if (n == 0) return 0.0;
  double h = 0.0;
  double dn = static_cast<double>(n);
  for (const auto& [key, c] : counts) {
    double p = static_cast<double>(c) / dn;
    h -= p * std::log(p);
  }
  return h;
}

double EntropyMMOfCounts(const std::unordered_map<uint64_t, size_t>& counts,
                         size_t n) {
  if (n == 0) return 0.0;
  return EntropyOfCounts(counts, n) +
         (static_cast<double>(counts.size()) - 1.0) /
             (2.0 * static_cast<double>(n));
}

PairEntropies HashPairEntropiesRef(const std::vector<int>& x,
                                   const std::vector<int>& y) {
  PairEntropies out;
  std::unordered_map<uint64_t, size_t> cx, cy, cxy;
  size_t n = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!Present(x[i]) || !Present(y[i])) continue;
    ++cx[Pack1(x[i])];
    ++cy[Pack1(y[i])];
    ++cxy[Pack2(x[i], y[i])];
    ++n;
  }
  out.hx = EntropyOfCounts(cx, n);
  out.hy = EntropyOfCounts(cy, n);
  out.hxy = EntropyOfCounts(cxy, n);
  out.hx_mm = EntropyMMOfCounts(cx, n);
  out.hy_mm = EntropyMMOfCounts(cy, n);
  out.hxy_mm = EntropyMMOfCounts(cxy, n);
  return out;
}

PairEntropies ComputePairEntropiesRef(const std::vector<int>& x,
                                      const std::vector<int>& y) {
  DensePair dense;
  if (BuildDensePair(x, y, &dense)) return DensePairEntropiesRef(dense);
  return HashPairEntropiesRef(x, y);
}

}  // namespace

double Entropy(const std::vector<int>& x) {
  return ComputePairEntropiesRef(x, x).hx;
}

double JointEntropy(const std::vector<int>& x, const std::vector<int>& y) {
  return ComputePairEntropiesRef(x, y).hxy;
}

double MutualInformation(const std::vector<int>& x,
                         const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropiesRef(x, y);
  return std::max(0.0, e.hx + e.hy - e.hxy);
}

double MutualInformationCorrected(const std::vector<int>& x,
                                  const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropiesRef(x, y);
  return std::max(0.0, e.hx_mm + e.hy_mm - e.hxy_mm);
}

double SymmetricalUncertainty(const std::vector<int>& x,
                              const std::vector<int>& y) {
  PairEntropies e = ComputePairEntropiesRef(x, y);
  if (e.hx + e.hy <= 0.0) return 0.0;
  double mi = std::max(0.0, e.hx + e.hy - e.hxy);
  return 2.0 * mi / (e.hx + e.hy);
}

}  // namespace reference

}  // namespace autofeat
