// Prometheus-style text exposition of a MetricsRegistry.
//
// One function renders a point-in-time snapshot in the Prometheus text
// format (version 0.0.4): counters and gauges as single samples,
// log2-bucket Histograms as cumulative `_bucket{le="..."}` series, and
// QuantileHistograms as summaries with `{quantile="0.5|0.9|0.99|0.999"}`
// labels plus `_sum`/`_count`. Metric names are prefixed `autofeat_` and
// sanitized to the Prometheus charset (`[a-zA-Z0-9_]`, dots become
// underscores), so `serve.query_latency_ns` exposes as
// `autofeat_serve_query_latency_ns`.
//
// This is an exposition of *current values*, not a scrape endpoint: the
// daemon writes it on demand (`metrics` command) or at exit
// (`--metrics-text FILE`), and a node_exporter-style textfile collector
// can pick the file up.

#ifndef AUTOFEAT_OBS_PROMETHEUS_H_
#define AUTOFEAT_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace autofeat::obs {

/// Renders every registered metric in the Prometheus text format.
std::string PrometheusText(const MetricsRegistry& metrics);

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_PROMETHEUS_H_
