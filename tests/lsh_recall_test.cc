// Differential recall: on fuzzer-generated lakes, LSH-mode discovery must
// recover >= 95% of the edges the exhaustive all-pairs sweep finds (the
// ISSUE-level contract of the candidate generator) and must never invent an
// edge all-pairs would not report (it scores a subset of the pairs with the
// same matcher, so every surviving edge carries the same score).
//
// Fuzzer lakes max out at 40 rows, so every column sits under the
// small-column rescue threshold (64): any exact edge's value-overlap
// witness is also a guaranteed rescue collision, and per-lake recall should
// in fact be 1.0. The asserted bound stays at the contract's 0.95 so tuning
// LshOptions defaults later cannot silently break the gate.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "discovery/data_lake.h"
#include "qa/lake_fuzzer.h"

namespace autofeat {
namespace {

std::set<std::string> EdgeSet(const DatasetRelationGraph& drg) {
  std::set<std::string> edges;
  for (size_t a = 0; a < drg.num_nodes(); ++a) {
    for (size_t b : drg.Neighbors(a)) {
      if (b <= a) continue;
      for (const JoinStep& step : drg.EdgesBetween(a, b)) {
        std::ostringstream line;
        line.precision(17);
        line << drg.NodeName(a) << "." << step.from_column << ">"
             << drg.NodeName(b) << "." << step.to_column << "="
             << step.weight;
        edges.insert(line.str());
      }
    }
  }
  return edges;
}

TEST(LshRecallTest, RecoversExactEdgesAcrossFuzzedLakes) {
  qa::LakeFuzzer fuzzer;
  size_t total_exact = 0;
  size_t total_recovered = 0;
  size_t lakes_with_edges = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    qa::FuzzedLake fz = fuzzer.Generate(seed);

    MatchOptions exact_options;
    auto exact = BuildDrgByDiscovery(fz.lake, exact_options);
    ASSERT_TRUE(exact.ok()) << "seed " << seed << ": "
                            << exact.status().ToString();
    MatchOptions lsh_options;
    lsh_options.candidate_mode = CandidateMode::kLsh;
    auto lsh = BuildDrgByDiscovery(fz.lake, lsh_options);
    ASSERT_TRUE(lsh.ok()) << "seed " << seed << ": "
                          << lsh.status().ToString();

    std::set<std::string> exact_edges = EdgeSet(*exact);
    std::set<std::string> lsh_edges = EdgeSet(*lsh);
    for (const std::string& edge : lsh_edges) {
      // Scoring a pair subset can only drop edges, never add or rescore.
      EXPECT_TRUE(exact_edges.count(edge) > 0)
          << "seed " << seed << ": LSH invented edge " << edge;
    }
    size_t recovered = 0;
    for (const std::string& edge : exact_edges) {
      recovered += lsh_edges.count(edge);
    }
    total_exact += exact_edges.size();
    total_recovered += recovered;
    if (!exact_edges.empty()) ++lakes_with_edges;
  }
  // The sweep must actually exercise discovery: enough adversarial seeds
  // overlap keys well enough to produce discovered edges that a recall
  // regression cannot hide behind empty graphs.
  ASSERT_GT(total_exact, 20u);
  ASSERT_GE(lakes_with_edges, 5u);
  double recall = static_cast<double>(total_recovered) /
                  static_cast<double>(total_exact);
  EXPECT_GE(recall, 0.95) << total_recovered << "/" << total_exact
                          << " edges recovered";
}

// Shrunk reproduction of the documented containment recall gap (DESIGN.md
// "Candidate generation"): an FK domain that is (a) too large for the
// default small-column rescue and (b) a tiny fraction of the PK range, so
// its Jaccard similarity sits far below the banding threshold. The hashes
// are fixed and platform-stable, so both the miss and the rescue are
// deterministic, not flaky.
class LshContainmentGapTest : public ::testing::Test {
 protected:
  // 120 distinct FK values inside a 4000-value PK range: Jaccard 0.03 (band
  // hit probability ~3% over 32 x 2 bands — and deterministically zero for
  // these values), distinct count above the default rescue threshold of 64.
  static constexpr size_t kFkDistinct = 120;
  static constexpr size_t kPkDistinct = 4000;

  DataLake MakeLake() {
    std::vector<std::string> fk_values;
    for (size_t r = 0; r < 3 * kFkDistinct; ++r) {
      fk_values.push_back("cust" + std::to_string(r % kFkDistinct));
    }
    Table orders("orders");
    orders.AddColumn("customer_id", Column::Strings(fk_values)).Abort();

    std::vector<std::string> pk_values;
    std::vector<double> scores;
    for (size_t r = 0; r < kPkDistinct; ++r) {
      pk_values.push_back("cust" + std::to_string(r));
      scores.push_back(static_cast<double>(r % 7));
    }
    Table customers("customers");
    customers.AddColumn("customer_id", Column::Strings(pk_values)).Abort();
    customers.AddColumn("score", Column::Doubles(scores)).Abort();

    DataLake lake;
    lake.AddTable(std::move(orders)).Abort();
    lake.AddTable(std::move(customers)).Abort();
    return lake;
  }
};

TEST_F(LshContainmentGapTest, DefaultRescueMissesRaisedRescueRecovers) {
  DataLake lake = MakeLake();

  // Ground truth: the exhaustive sweep reports the FK -> PK edge (identical
  // names, full containment).
  MatchOptions exact_options;
  auto exact = BuildDrgByDiscovery(lake, exact_options);
  ASSERT_TRUE(exact.ok());
  std::set<std::string> exact_edges = EdgeSet(*exact);
  ASSERT_GE(exact_edges.size(), 1u)
      << "the regression lake no longer produces the exact edge";

  // The gap: at the default rescue threshold (64 < 120 distinct FK values)
  // banding is the only collision mechanism and the pair's Jaccard is far
  // too low — the edge is dropped. If this starts failing, the default
  // closed the gap and the DESIGN.md wording should change with it.
  MatchOptions lsh_options;
  lsh_options.candidate_mode = CandidateMode::kLsh;
  ASSERT_LT(lsh_options.lsh.small_column_rescue, kFkDistinct);
  auto missed = BuildDrgByDiscovery(lake, lsh_options);
  ASSERT_TRUE(missed.ok());
  EXPECT_EQ(0u, EdgeSet(*missed).size())
      << "expected the containment miss at the default rescue threshold";

  // The knob: the rescue only pairs columns that are BOTH under the
  // threshold, so it must clear the PK's distinct count too — then any
  // intersecting sketches are guaranteed a collision and the full exact
  // edge set comes back.
  lsh_options.lsh.small_column_rescue = 4096;
  auto rescued = BuildDrgByDiscovery(lake, lsh_options);
  ASSERT_TRUE(rescued.ok());
  EXPECT_EQ(exact_edges, EdgeSet(*rescued));
}

}  // namespace
}  // namespace autofeat
