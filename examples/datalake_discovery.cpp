// Data-lake walkthrough: persist a lake as CSV files, reload it with no
// KFK metadata, let the schema matcher discover the joinability graph
// (spurious edges included), and run AutoFeat over the discovered
// multigraph — the paper's "data lake setting" end to end.

#include <cstdio>
#include <filesystem>

#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "ml/trainer.h"
#include "table/csv.h"

using namespace autofeat;

int main() {
  namespace fs = std::filesystem;

  // 1. Build a synthetic lake and persist it as a directory of CSV files —
  //    the on-disk shape of a real open-data collection.
  datagen::LakeSpec spec;
  spec.name = "openlake";
  spec.rows = 1500;
  spec.joinable_tables = 8;
  spec.total_features = 32;
  spec.seed = 21;
  datagen::BuiltLake built = datagen::BuildLake(spec);

  std::string dir = fs::temp_directory_path() / "autofeat_lake_demo";
  fs::create_directories(dir);
  for (const auto& table : built.lake.tables()) {
    WriteCsvFile(table, dir + "/" + table.name() + ".csv").Abort();
  }
  std::printf("wrote %zu CSV files to %s\n", built.lake.num_tables(),
              dir.c_str());

  // 2. Reload from disk. The reloaded lake has *no* KFK metadata: the
  //    relationships must be rediscovered.
  auto lake = DataLake::FromCsvDirectory(dir);
  lake.status().Abort("loading lake");
  std::printf("reloaded %zu tables, %zu KFK constraints (none survive "
              "CSV)\n\n",
              lake->num_tables(), lake->kfk_constraints().size());

  // 3. Dataset discovery: build the DRG with the schema matcher at the
  //    paper's threshold of 0.55.
  MatchOptions match;
  match.threshold = 0.55;
  auto drg = BuildDrgByDiscovery(*lake, match);
  drg.status().Abort("schema matching");
  std::printf("discovered DRG: %zu nodes, %zu edges (true KFK links: %zu)\n",
              drg->num_nodes(), drg->num_edges(),
              built.lake.kfk_constraints().size());
  size_t base_node = *drg->NodeId(built.base_table);
  double join_all_log10 = drg->JoinAllPathCountLog10(base_node);
  std::printf("log10(#JoinAll join orders) = %.1f%s\n\n", join_all_log10,
              join_all_log10 >= 6.0
                  ? " -> exhaustive joining is infeasible (Eq. 3)"
                  : "");

  // 4. AutoFeat over the discovered graph.
  auto base_eval =
      ml::TrainAndEvaluate(**lake->GetTable(built.base_table),
                           built.label_column, ml::ModelKind::kLightGbm);
  base_eval.status().Abort();
  std::printf("base accuracy     : %.3f\n", base_eval->accuracy);

  AutoFeatConfig config;
  config.max_paths = 600;
  AutoFeat engine(&*lake, &*drg, config);
  auto result = engine.Augment(built.base_table, built.label_column,
                               ml::ModelKind::kLightGbm);
  result.status().Abort("AutoFeat");
  std::printf("augmented accuracy: %.3f\n", result->accuracy);
  std::printf("explored %zu paths (%zu infeasible joins pruned, %zu failed "
              "the completeness threshold)\n",
              result->discovery.paths_explored,
              result->discovery.paths_pruned_infeasible,
              result->discovery.paths_pruned_quality);
  std::printf("feature selection: %.3f s of %.3f s total\n",
              result->discovery.feature_selection_seconds,
              result->total_seconds);

  std::printf("\nbest path (%zu hops):\n", result->best_path.path.length());
  for (const auto& step : result->best_path.path.steps) {
    std::printf("  %s.%s -> %s.%s (similarity %.2f)\n",
                drg->NodeName(step.from_node).c_str(),
                step.from_column.c_str(), drg->NodeName(step.to_node).c_str(),
                step.to_column.c_str(), step.weight);
  }
  std::printf("selected features:\n");
  for (const auto& fs_score : result->best_path.selected_features) {
    std::printf("  %-22s score %.3f\n", fs_score.name.c_str(),
                fs_score.score);
  }

  // Ground truth for comparison.
  std::printf("\nground truth (tables with planted signal):\n");
  for (const auto& truth : built.truth) {
    if (truth.effect > 0) {
      std::printf("  %-14s depth=%zu effect=%.2f\n", truth.name.c_str(),
                  truth.depth, truth.effect);
    }
  }
  fs::remove_all(dir);
  return 0;
}
