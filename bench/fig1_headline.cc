// Figure 1: the headline scatter — feature discovery/augmentation time vs
// downstream accuracy, per method, aggregated over a subset of datasets in
// the benchmark setting. AutoFeat should sit in the fast-and-accurate
// corner (top-left of the paper's plot).

#include <cstdio>

#include "harness.h"

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("Figure 1: feature selection time vs accuracy");
  std::vector<std::string> names = FullMode()
      ? std::vector<std::string>{"credit", "eyemove", "covertype", "jannis",
                                 "miniboone", "steel"}
      : std::vector<std::string>{"credit", "covertype", "steel"};
  std::vector<ml::ModelKind> models = BenchTreeModels();

  struct Point {
    double fs = 0, total = 0, acc = 0;
    size_t count = 0;
  };
  std::vector<std::pair<std::string, Point>> points;
  auto find = [&](const std::string& name) -> Point& {
    for (auto& [n, p] : points) {
      if (n == name) return p;
    }
    points.emplace_back(name, Point{});
    return points.back().second;
  };

  for (const auto& name : names) {
    auto spec = ScaledSpec(*datagen::FindDataset(name));
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
    auto drg = BuildSettingDrg(built, Setting::kBenchmark);
    drg.status().Abort();
    for (auto& method : MakeMethods(/*include_join_all=*/true)) {
      auto row = RunMethod(method.get(), built, *drg, models);
      row.status().Abort(method->name().c_str());
      Point& p = find(row->method);
      p.fs += row->fs_seconds;
      p.total += row->total_seconds;
      p.acc += row->accuracy;
      ++p.count;
    }
  }

  std::printf("\n%-12s %14s %12s %8s\n", "method", "fs_time_s(sum)",
              "total_s(sum)", "avg_acc");
  PrintRule(50);
  for (const auto& [name, p] : points) {
    std::printf("%-12s %14.3f %12.3f %8.3f\n", name.c_str(), p.fs, p.total,
                p.acc / static_cast<double>(p.count));
  }
  std::printf("\nexpected: AutoFeat in the fast+accurate corner — lower "
              "time than ARDA/MAB at equal or better accuracy.\n");
  return 0;
}
