#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace autofeat {
namespace {

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_GE(ResolveNumThreads(0), 1u);
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 100) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 5, 5, 1, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 7, 3, 1, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(nullptr, 0, 0, 4, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(), 7,
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(2);
  std::vector<int> out(5, 0);
  // range <= grain falls back to the caller thread; still covers all.
  ParallelFor(&pool, 0, out.size(), 100, [&](size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 5);
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 2, 8, 2, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{2, 3, 4, 5, 6, 7}));
}

TEST(ParallelForTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 64, 1,
                  [&](size_t i) {
                    if (i % 2 == 1) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool survives a throwing loop and stays usable.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 0, 16, 1, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 16);
}

TEST(ParallelForTest, LowestChunkExceptionWins) {
  ThreadPool pool(4);
  // Every index throws its own value; the rethrown one must come from the
  // lowest chunk regardless of scheduling.
  for (int round = 0; round < 5; ++round) {
    size_t thrown = 9999;
    try {
      ParallelFor(&pool, 0, 32, 1, [](size_t i) {
        throw i;  // NOLINT: test-only control flow
      });
    } catch (size_t i) {
      thrown = i;
    }
    EXPECT_EQ(thrown, 0u);
  }
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadPool pool(4);
  std::vector<int> squares =
      ParallelMap<int>(&pool, 100, 3, [](size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(squares.size(), 100u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
  // Inline (null pool) agrees.
  EXPECT_EQ(squares, ParallelMap<int>(nullptr, 100, 3, [](size_t i) {
              return static_cast<int>(i * i);
            }));
}

TEST(DeriveSeedTest, StreamsAreStableAndDistinct) {
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(42, 1));
  EXPECT_NE(DeriveSeed(42, 0), DeriveSeed(43, 0));
}

}  // namespace
}  // namespace autofeat
