#include "discovery/schema_matcher.h"

#include <algorithm>

#include "util/string_utils.h"

namespace autofeat {

double NameSimilarity(std::string_view a, std::string_view b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la == lb) return 1.0;
  // Qualified names ("table.column") match on their column part.
  auto strip = [](const std::string& s) {
    size_t dot = s.find_last_of('.');
    return dot == std::string::npos ? s : s.substr(dot + 1);
  };
  std::string ca = strip(la);
  std::string cb = strip(lb);
  if (ca == cb) return 1.0;
  // The q-gram score floors the Levenshtein pass: only a Levenshtein
  // similarity above it can change the max, so the DP may bail out early on
  // clearly dissimilar names (it runs on every candidate column-name pair).
  double qgram = QGramJaccard(ca, cb);
  if (qgram >= 1.0) return 1.0;
  return std::max(qgram, BoundedLevenshteinSimilarity(ca, cb, qgram));
}

double ValueOverlap(const Column& a, const Column& b, size_t max_sample) {
  // One-shot convenience path: sketch both sides here. Batch callers build
  // a LakeSketchCache instead so each column is sketched exactly once.
  return SketchContainment(BuildColumnSketch(a, max_sample),
                           BuildColumnSketch(b, max_sample));
}

std::vector<ColumnMatch> MatchSchemas(
    const Table& left, const std::vector<ColumnSketch>& left_sketches,
    const Table& right, const std::vector<ColumnSketch>& right_sketches,
    const MatchOptions& options) {
  std::vector<ColumnMatch> matches;
  for (size_t lc = 0; lc < left.num_columns(); ++lc) {
    const Field& lf = left.schema().field(lc);
    const ColumnSketch& ls = left_sketches[lc];
    for (size_t rc = 0; rc < right.num_columns(); ++rc) {
      const Field& rf = right.schema().field(rc);
      // Join-plausibility filter: continuous doubles only pair with doubles;
      // key-like types (int64/string) pair with each other.
      bool l_key_like = lf.type != DataType::kDouble;
      bool r_key_like = rf.type != DataType::kDouble;
      if (l_key_like != r_key_like) continue;
      const ColumnSketch& rs = right_sketches[rc];

      double name_sim = NameSimilarity(lf.name, rf.name);
      double value_sim = SketchContainment(ls, rs);
      // Containment of a tiny value set (binary flags, labels) inside a
      // large key range carries no join evidence; discount it.
      if (options.min_distinct_for_overlap > 1) {
        size_t distinct = std::min(
            {ls.num_distinct, rs.num_distinct,
             options.min_distinct_for_overlap});
        value_sim *= std::min(
            1.0, static_cast<double>(distinct) /
                     static_cast<double>(options.min_distinct_for_overlap));
      }
      double score = options.name_weight * name_sim +
                     options.value_weight * value_sim;
      if (score >= options.threshold) {
        matches.push_back(ColumnMatch{lf.name, rf.name, score});
      }
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const ColumnMatch& a, const ColumnMatch& b) {
                     return a.score > b.score;
                   });
  return matches;
}

std::vector<ColumnMatch> MatchSchemas(const Table& left, const Table& right,
                                      const MatchOptions& options) {
  auto sketch_table = [&](const Table& t) {
    std::vector<ColumnSketch> sketches;
    sketches.reserve(t.num_columns());
    for (size_t c = 0; c < t.num_columns(); ++c) {
      sketches.push_back(
          BuildColumnSketch(t.column(c), options.max_sample_values));
    }
    return sketches;
  };
  return MatchSchemas(left, sketch_table(left), right, sketch_table(right),
                      options);
}

}  // namespace autofeat
