#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace autofeat::ml {

namespace {

// Binary gini impurity given positive count and total.
double Gini(double positives, double total) {
  if (total <= 0) return 0.0;
  double p = positives / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Fit(const Dataset& train) {
  std::vector<size_t> rows(train.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return FitRows(train, rows);
}

Status DecisionTree::FitRows(const Dataset& train,
                             const std::vector<size_t>& rows) {
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  nodes_.clear();
  depth_ = 0;
  num_features_ = train.num_features();
  importances_.assign(num_features_, 0.0);
  Rng rng(options_.seed);
  std::vector<size_t> mutable_rows = rows;
  BuildNode(train, mutable_rows, 0, &rng);
  // Normalise importances to sum 1 (when any split happened).
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0) {
    for (double& v : importances_) v /= total;
  }
  return Status::OK();
}

DecisionTree::SplitDecision DecisionTree::FindBestSplit(
    const Dataset& data, const std::vector<size_t>& rows, Rng* rng) const {
  SplitDecision best;
  size_t n = rows.size();
  double total_pos = 0;
  for (size_t r : rows) total_pos += data.label(r);
  double parent_gini = Gini(total_pos, static_cast<double>(n));
  if (parent_gini == 0.0) return best;  // Pure node.

  // Feature subsampling.
  size_t p = data.num_features();
  if (p == 0) return best;  // Featureless data: majority-vote leaf.
  std::vector<size_t> features(p);
  for (size_t f = 0; f < p; ++f) features[f] = f;
  size_t consider = p;
  if (options_.max_features == TreeOptions::kSqrt) {
    consider = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(p))));
  } else if (options_.max_features > 0) {
    consider = static_cast<size_t>(options_.max_features);
  }
  consider = std::min(consider, p);
  if (consider < p) rng->Shuffle(&features);

  std::vector<std::pair<double, int>> values;  // (feature value, label)
  values.reserve(n);
  for (size_t fi = 0; fi < consider; ++fi) {
    size_t f = features[fi];
    const std::vector<double>& col = data.column(f);

    if (options_.random_thresholds) {
      // ExtraTrees: one uniform threshold in [min, max).
      double lo = col[rows[0]], hi = col[rows[0]];
      for (size_t r : rows) {
        lo = std::min(lo, col[r]);
        hi = std::max(hi, col[r]);
      }
      if (!(lo < hi)) continue;
      double threshold = rng->Uniform(lo, hi);
      double left_n = 0, left_pos = 0;
      for (size_t r : rows) {
        if (col[r] <= threshold) {
          ++left_n;
          left_pos += data.label(r);
        }
      }
      double right_n = static_cast<double>(n) - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      double gain = parent_gini -
                    (left_n / n) * Gini(left_pos, left_n) -
                    (right_n / n) * Gini(total_pos - left_pos, right_n);
      if (gain > best.gain) {
        best = {true, static_cast<int>(f), threshold, gain};
      }
      continue;
    }

    // Exact CART: sort node values, scan class-boundary split points.
    values.clear();
    for (size_t r : rows) values.emplace_back(col[r], data.label(r));
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;

    double left_pos = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_pos += values[i].second;
      if (values[i].first == values[i + 1].first) continue;
      double left_n = static_cast<double>(i + 1);
      double right_n = static_cast<double>(n) - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      double gain = parent_gini -
                    (left_n / n) * Gini(left_pos, left_n) -
                    (right_n / n) * Gini(total_pos - left_pos, right_n);
      if (gain > best.gain) {
        double threshold =
            values[i].first +
            (values[i + 1].first - values[i].first) / 2.0;
        best = {true, static_cast<int>(f), threshold, gain};
      }
    }
  }
  return best;
}

int DecisionTree::BuildNode(const Dataset& data, std::vector<size_t>& rows,
                            int depth, Rng* rng) {
  depth_ = std::max(depth_, depth);
  int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  double positives = 0;
  for (size_t r : rows) positives += data.label(r);
  nodes_[index].proba = positives / static_cast<double>(rows.size());

  bool can_split = depth < options_.max_depth &&
                   rows.size() >= options_.min_samples_split;
  if (!can_split) return index;

  SplitDecision split = FindBestSplit(data, rows, rng);
  if (!split.found) return index;

  importances_[static_cast<size_t>(split.feature)] +=
      split.gain * static_cast<double>(rows.size());

  const std::vector<double>& col = data.column(split.feature);
  auto mid = std::partition(rows.begin(), rows.end(), [&](size_t r) {
    return col[r] <= split.threshold;
  });
  std::vector<size_t> left_rows(rows.begin(), mid);
  std::vector<size_t> right_rows(mid, rows.end());
  if (left_rows.empty() || right_rows.empty()) return index;

  nodes_[index].feature = split.feature;
  nodes_[index].threshold = split.threshold;
  int left = BuildNode(data, left_rows, depth + 1, rng);
  nodes_[index].left = left;
  int right = BuildNode(data, right_rows, depth + 1, rng);
  nodes_[index].right = right;
  return index;
}

double DecisionTree::PredictProba(const Dataset& data, size_t row) const {
  if (nodes_.empty()) return 0.5;
  int node = 0;
  while (nodes_[node].feature >= 0) {
    double v = data.at(row, static_cast<size_t>(nodes_[node].feature));
    node = v <= nodes_[node].threshold ? nodes_[node].left
                                       : nodes_[node].right;
  }
  return nodes_[node].proba;
}

std::vector<double> DecisionTree::FeatureImportances() const {
  return importances_;
}

}  // namespace autofeat::ml
