#include "baselines/mab.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "discovery/join_index_cache.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "relational/join.h"
#include "relational/join_index.h"
#include "relational/sampling.h"
#include "util/timer.h"

namespace autofeat::baselines {

namespace {

// One bandit arm: a candidate (table, same-name join column) pair.
struct Arm {
  size_t node = 0;
  std::string column;  // identical on both sides (the MAB restriction)
  double reward_sum = 0.0;
  size_t pulls = 0;

  double UcbScore(double c, size_t total_pulls) const {
    if (pulls == 0) return std::numeric_limits<double>::infinity();
    double mean = reward_sum / static_cast<double>(pulls);
    return mean + c * std::sqrt(std::log(static_cast<double>(total_pulls + 1)) /
                                static_cast<double>(pulls));
  }
};

}  // namespace

Result<AugmenterResult> Mab::Augment(const DataLake& lake,
                                     const DatasetRelationGraph& drg,
                                     const std::string& base_table,
                                     const std::string& label_column) {
  Timer total_timer;
  AF_ASSIGN_OR_RETURN(const Table* base, lake.GetTable(base_table));
  AF_ASSIGN_OR_RETURN(size_t base_node, drg.NodeId(base_table));
  Rng rng(options_.seed);

  AugmenterResult result;
  result.augmented = *base;

  // Interned join-key indexes, built once per (table, column) arm target.
  JoinIndexCache join_cache(&lake, options_.seed, options_.metrics);

  // Validation machinery: sampled rows, fixed split, reward = accuracy delta.
  auto evaluate = [&](const Table& table) -> Result<double> {
    Table sampled = table;
    if (options_.sample_rows > 0 && table.num_rows() > options_.sample_rows) {
      AF_ASSIGN_OR_RETURN(sampled, StratifiedSample(table, label_column,
                                                    options_.sample_rows,
                                                    &rng));
    }
    AF_ASSIGN_OR_RETURN(ml::Dataset data,
                        ml::Dataset::FromTable(sampled, label_column));
    size_t n = data.num_rows();
    std::vector<size_t> rows(n);
    for (size_t r = 0; r < n; ++r) rows[r] = r;
    Rng split_rng(options_.seed);  // Same split every episode.
    split_rng.Shuffle(&rows);
    size_t val_n = std::max<size_t>(1, n / 5);
    std::vector<size_t> val(rows.begin(),
                            rows.begin() + static_cast<ptrdiff_t>(val_n));
    std::vector<size_t> train(rows.begin() + static_cast<ptrdiff_t>(val_n),
                              rows.end());
    ml::Forest forest =
        ml::Forest::RandomForest(options_.forest_trees, rng.engine()());
    AF_RETURN_NOT_OK(forest.Fit(data.TakeRows(train)));
    ml::Dataset val_data = data.TakeRows(val);
    return ml::Accuracy(val_data.labels(), forest.PredictProbaAll(val_data));
  };

  Timer fs_timer;
  AF_ASSIGN_OR_RETURN(double current_accuracy, evaluate(result.augmented));

  // Seed arms with the base table's same-name join opportunities.
  std::vector<Arm> arms;
  std::unordered_set<size_t> joined{base_node};
  auto add_arms_for = [&](size_t node) {
    for (size_t neighbor : drg.Neighbors(node)) {
      if (joined.count(neighbor) > 0) continue;
      for (const JoinStep& edge : drg.EdgesBetween(node, neighbor)) {
        // The MAB restriction: both sides must carry the same column name.
        if (edge.from_column != edge.to_column) continue;
        if (edge.from_column == label_column) continue;  // Label leakage.
        bool duplicate = false;
        for (const Arm& a : arms) {
          if (a.node == neighbor && a.column == edge.from_column) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) arms.push_back(Arm{neighbor, edge.from_column, 0, 0});
      }
    }
  };
  add_arms_for(base_node);

  size_t total_pulls = 0;
  for (size_t episode = 0; episode < options_.episodes && !arms.empty();
       ++episode) {
    // UCB pick.
    size_t best = 0;
    for (size_t a = 1; a < arms.size(); ++a) {
      if (arms[a].UcbScore(options_.ucb_c, total_pulls) >
          arms[best].UcbScore(options_.ucb_c, total_pulls)) {
        best = a;
      }
    }
    Arm arm = arms[best];
    ++total_pulls;

    double reward = -1.0;
    bool accepted = false;
    const Table* right = nullptr;
    {
      auto r = lake.GetTable(drg.NodeName(arm.node));
      if (r.ok()) right = *r;
    }
    if (right != nullptr && !right->HasColumn(label_column) &&
        result.augmented.HasColumn(arm.column)) {
      auto join_index =
          join_cache.GetOrBuild(drg.NodeName(arm.node), arm.column);
      auto join = !join_index.ok()
                      ? Result<JoinResult>(join_index.status())
                      : LeftJoinWithIndex(result.augmented, arm.column,
                                          *right, **join_index);
      if (join.ok() && join->stats.matched_rows > 0) {
        AF_ASSIGN_OR_RETURN(double new_accuracy, evaluate(join->table));
        reward = new_accuracy - current_accuracy;
        if (reward > 0) {
          accepted = true;
          current_accuracy = new_accuracy;
          result.augmented = std::move(join->table);
          ++result.tables_joined;
        }
      }
    }

    if (accepted) {
      joined.insert(arm.node);
      arms.erase(arms.begin() + static_cast<ptrdiff_t>(best));
      add_arms_for(arm.node);  // Transitive arms become reachable.
    } else {
      arms[best].reward_sum += reward;
      arms[best].pulls += 1;
    }
  }
  result.feature_selection_seconds = fs_timer.ElapsedSeconds();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace autofeat::baselines
