// Seeded random number generation. Every stochastic component in the library
// takes an explicit Rng (or seed) so that runs are reproducible.

#ifndef AUTOFEAT_UTIL_RNG_H_
#define AUTOFEAT_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace autofeat {

/// \brief Deterministic pseudo-random generator (mt19937_64 wrapper).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform index in [0, n).
  size_t UniformIndex(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal sample scaled to (mean, stddev).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[UniformIndex(i + 1)]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n) {
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    Shuffle(&perm);
    return perm;
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives a statistically independent seed for stream `stream` of a master
/// `seed` (splitmix64 finaliser). Parallel call sites seed one Rng per task
/// from (seed, task_index) so results do not depend on how many threads
/// consumed a shared generator.
inline uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace autofeat

#endif  // AUTOFEAT_UTIL_RNG_H_
