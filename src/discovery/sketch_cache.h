// Precomputed distinct-value sketches for DRG construction.
//
// All-pairs joinability matching is quadratic in the number of tables, and
// the naive formulation re-scans (and re-sketches) each column once per
// table pair it participates in. A LakeSketchCache computes every column's
// bottom-k-by-hash sketch exactly once — in parallel over tables when a
// ThreadPool is given — so pair scoring degenerates to set intersections
// over cached sketches. The sketch keeps the values with the smallest
// hashes, so the *same* values survive on both sides of any comparison and
// containment/Jaccard estimates are stable under sampling (see
// schema_matcher.h).

#ifndef AUTOFEAT_DISCOVERY_SKETCH_CACHE_H_
#define AUTOFEAT_DISCOVERY_SKETCH_CACHE_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "table/table.h"

namespace autofeat {

class DataLake;
class ThreadPool;

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief Distinct-value summary of one column.
struct ColumnSketch {
  /// Up to `max_sample` distinct non-null values (bottom-k by hash).
  std::unordered_set<std::string> values;
  /// Exact distinct non-null count before sampling (for the low-cardinality
  /// evidence discount, which needs the true count, not the sample size).
  size_t num_distinct = 0;

  /// Approximate heap footprint in bytes. Size-based (value count and
  /// lengths, not bucket capacity), so equal content reports equal bytes
  /// and the `sketch_cache.bytes` gauge stays deterministic.
  size_t ApproxBytes() const {
    size_t total = sizeof(ColumnSketch);
    for (const auto& v : values) {
      total += sizeof(std::string) + v.size() + 2 * sizeof(void*);
    }
    return total;
  }
};

/// Builds the sketch of a single column.
ColumnSketch BuildColumnSketch(const Column& col, size_t max_sample);

/// Containment |A ∩ B| / min(|A|, |B|) of two sketches (0 if either empty).
double SketchContainment(const ColumnSketch& a, const ColumnSketch& b);

/// Jaccard |A ∩ B| / |A ∪ B| of two sketches (0 if both empty).
double SketchJaccard(const ColumnSketch& a, const ColumnSketch& b);

/// \brief Sketches of every column of every table of a lake, indexed by
/// (table position, column position).
class LakeSketchCache {
 public:
  /// Sketches all columns of all `lake` tables; table-level sketching fans
  /// out over `pool` when given (results are identical at any thread count).
  /// A non-null `metrics` counts `sketch_cache.builds` (column sketches
  /// computed — the cache misses of the naive per-pair formulation) and
  /// maintains the `sketch_cache.bytes` / `.bytes_peak` footprint gauges.
  /// Per-table sketching records `sketch.table` worker spans into the
  /// pool's attached tracer (ThreadPool::set_tracer), when both exist.
  static LakeSketchCache Build(const DataLake& lake, size_t max_sample,
                               ThreadPool* pool = nullptr,
                               obs::MetricsRegistry* metrics = nullptr);

  const std::vector<ColumnSketch>& table_sketches(size_t table_index) const {
    return sketches_[table_index];
  }
  size_t num_tables() const { return sketches_.size(); }
  size_t max_sample() const { return max_sample_; }

 private:
  std::vector<std::vector<ColumnSketch>> sketches_;
  size_t max_sample_ = 0;
};

}  // namespace autofeat

#endif  // AUTOFEAT_DISCOVERY_SKETCH_CACHE_H_
