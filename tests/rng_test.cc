#include "util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_difference = false;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // All three values hit.
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformIndex(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformRealInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(15);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(17);
  auto perm = rng.Permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationActuallyShuffles) {
  Rng rng(19);
  auto perm = rng.Permutation(100);
  size_t fixed_points = 0;
  for (size_t i = 0; i < perm.size(); ++i) fixed_points += (perm[i] == i);
  EXPECT_LT(fixed_points, 20u);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(21);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent's next outputs.
  bool differs = false;
  for (int i = 0; i < 20; ++i) {
    if (parent.UniformInt(0, 1 << 30) != child.UniformInt(0, 1 << 30)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(29), b(29);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.UniformInt(0, 1000), fb.UniformInt(0, 1000));
  }
}

}  // namespace
}  // namespace autofeat
