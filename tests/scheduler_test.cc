#include "util/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/work_stealing_deque.h"

namespace autofeat {
namespace {

TEST(SchedulerKindTest, NamesAndParsingRoundTrip) {
  EXPECT_STREQ("forkjoin", SchedulerKindName(SchedulerKind::kForkJoin));
  EXPECT_STREQ("morsel", SchedulerKindName(SchedulerKind::kMorsel));
  SchedulerKind kind = SchedulerKind::kForkJoin;
  EXPECT_TRUE(ParseSchedulerKind("morsel", &kind));
  EXPECT_EQ(SchedulerKind::kMorsel, kind);
  EXPECT_TRUE(ParseSchedulerKind("forkjoin", &kind));
  EXPECT_EQ(SchedulerKind::kForkJoin, kind);
  EXPECT_FALSE(ParseSchedulerKind("steal", &kind));
  EXPECT_EQ(SchedulerKind::kForkJoin, kind) << "failed parse must not write";
}

TEST(SchedulerKindTest, ParseSchedulerNormalisesCaseAndReportsValidValues) {
  EXPECT_EQ(*ParseScheduler("Morsel"), SchedulerKind::kMorsel);
  EXPECT_EQ(*ParseScheduler(" FORKJOIN "), SchedulerKind::kForkJoin);
  Result<SchedulerKind> bad = ParseScheduler("steal");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("valid values: forkjoin, morsel"),
            std::string::npos)
      << bad.status().message();
  SchedulerKind kind = SchedulerKind::kMorsel;
  EXPECT_TRUE(ParseSchedulerKind("MoRsEl", &kind));
  EXPECT_EQ(SchedulerKind::kMorsel, kind);
}

TEST(WorkStealingDequeTest, OwnerLifoThiefFifo) {
  WorkStealingDeque dq(8);
  for (size_t v : {10, 11, 12, 13}) ASSERT_TRUE(dq.PushBottom(v));
  size_t v = 0;
  ASSERT_TRUE(dq.StealTop(&v));
  EXPECT_EQ(10u, v);  // Thief takes the oldest item.
  ASSERT_TRUE(dq.PopBottom(&v));
  EXPECT_EQ(13u, v);  // Owner takes the newest.
  ASSERT_TRUE(dq.PopBottom(&v));
  EXPECT_EQ(12u, v);
  ASSERT_TRUE(dq.StealTop(&v));
  EXPECT_EQ(11u, v);
  EXPECT_FALSE(dq.PopBottom(&v));
  EXPECT_FALSE(dq.StealTop(&v));
}

TEST(WorkStealingDequeTest, CapacityRoundsUpAndRejectsOverflow) {
  WorkStealingDeque dq(5);
  EXPECT_EQ(8u, dq.capacity());
  for (size_t v = 0; v < 8; ++v) EXPECT_TRUE(dq.PushBottom(v));
  EXPECT_FALSE(dq.PushBottom(99));
  size_t v = 0;
  ASSERT_TRUE(dq.StealTop(&v));
  EXPECT_EQ(0u, v);
  // A freed slot becomes pushable again (ring wrap).
  EXPECT_TRUE(dq.PushBottom(99));
  EXPECT_FALSE(dq.PushBottom(100));
}

TEST(WorkStealingDequeTest, ConcurrentStealsClaimEveryItemExactlyOnce) {
  // One owner popping, several thieves stealing, all racing: the union of
  // claims must be an exact partition of the pushed items. Under TSan this
  // is also the data-race gate for the deque protocol.
  const size_t kItems = 20000;
  const size_t kThieves = 3;
  WorkStealingDeque dq(kItems);
  for (size_t v = 0; v < kItems; ++v) ASSERT_TRUE(dq.PushBottom(v));

  std::vector<std::vector<size_t>> stolen(kThieves);
  std::atomic<bool> owner_done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      size_t v = 0;
      // Keep trying until the owner declared the deque drained; a failed
      // steal may just be a lost race.
      while (!owner_done.load(std::memory_order_acquire)) {
        if (dq.StealTop(&v)) stolen[t].push_back(v);
      }
      while (dq.StealTop(&v)) stolen[t].push_back(v);
    });
  }
  std::vector<size_t> popped;
  size_t v = 0;
  while (dq.PopBottom(&v)) popped.push_back(v);
  owner_done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::set<size_t> seen(popped.begin(), popped.end());
  size_t total = popped.size();
  for (const auto& s : stolen) {
    seen.insert(s.begin(), s.end());
    total += s.size();
  }
  EXPECT_EQ(kItems, total) << "an item was claimed twice or dropped";
  EXPECT_EQ(kItems, seen.size());
  EXPECT_EQ(0u, *seen.begin());
  EXPECT_EQ(kItems - 1, *seen.rbegin());
}

TEST(MorselParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  MorselParallelFor(&pool, 5, 5, 1, [&](size_t) { calls.fetch_add(1); });
  MorselParallelFor(&pool, 7, 3, 1, [&](size_t) { calls.fetch_add(1); });
  MorselParallelFor(nullptr, 0, 0, 4, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(0, calls.load());
}

TEST(MorselParallelForTest, CoversEveryIndexExactlyOnceAcrossShapes) {
  // Odd ranges x odd morsel sizes x pool widths, including lanes > morsels
  // and morsels > deque pre-fill splits.
  for (size_t threads : {1, 2, 3, 5}) {
    ThreadPool pool(threads);
    for (size_t range : {1, 2, 7, 64, 97, 1000}) {
      for (size_t morsel : {0, 1, 3, 7, 64, 2000}) {
        std::vector<std::atomic<int>> hits(range);
        MorselParallelFor(&pool, 0, range, morsel,
                          [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < range; ++i) {
          ASSERT_EQ(1, hits[i].load())
              << "threads=" << threads << " range=" << range
              << " morsel=" << morsel << " i=" << i;
        }
      }
    }
  }
}

TEST(MorselParallelForTest, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  MorselParallelFor(&pool, 17, 41, 2, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(i >= 17 && i < 41 ? 1 : 0, hits[i].load()) << "i=" << i;
  }
}

TEST(MorselParallelForTest, SkewedMorselsRebalanceThroughStealing) {
  // Lane 0's block front-loads all the expensive work (the first few
  // indices sleep; everything else is free). Helpers must steal across the
  // block boundaries for the loop to finish in sensible time, and the
  // counters must show it happened. Under TSan this is the steal-heavy
  // stress for owner/thief interleavings.
  // The registry must outlive the pool: workers touch their thread_pool.*
  // counters after each task body returns, so destruction must join the
  // workers (pool) before the counters (metrics) go away.
  obs::MetricsRegistry metrics;
  ThreadPool pool(3);
  pool.set_metrics(&metrics);
  const size_t kRange = 400;
  std::vector<std::atomic<int>> hits(kRange);
  MorselParallelFor(&pool, 0, kRange, 1, [&](size_t i) {
    if (i < 4) std::this_thread::sleep_for(std::chrono::milliseconds(30));
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kRange; ++i) ASSERT_EQ(1, hits[i].load());
  obs::Counter* steals =
      obs::GetCounter(&metrics, "thread_pool.morsel.steals",
                      /*deterministic=*/false);
  obs::Counter* executed =
      obs::GetCounter(&metrics, "thread_pool.morsel.executed",
                      /*deterministic=*/false);
  EXPECT_EQ(kRange, executed->value());
  // The caller's block alone holds ~100 morsels, 4 of which cost 30ms each;
  // with three helper lanes idle after ~100 free morsels, stealing is the
  // only way the run completes with every lane busy. At least one steal is
  // guaranteed unless the OS serialised the whole pool, which the sleeps
  // make effectively impossible.
  EXPECT_GT(steals->value(), 0u);
}

TEST(MorselParallelForTest, PropagatesLowestMorselException) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      MorselParallelFor(&pool, 0, 256, 1, [&](size_t i) {
        if (i == 31) throw std::runtime_error("boom-31");
        if (i == 200) throw std::runtime_error("boom-200");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ("boom-31", e.what());
    }
  }
}

TEST(MorselParallelForTest, InlineWhenPoolIsNullOrSingleThreaded) {
  std::vector<int> out(10, 0);
  MorselParallelFor(nullptr, 0, out.size(), 1, [&](size_t i) { out[i] = 1; });
  EXPECT_EQ(10, std::accumulate(out.begin(), out.end(), 0));
  ThreadPool pool(1);
  MorselParallelFor(&pool, 0, out.size(), 1, [&](size_t i) { out[i] += 1; });
  EXPECT_EQ(20, std::accumulate(out.begin(), out.end(), 0));
}

TEST(ParallelMapWithTest, BothKindsProduceIdenticalIndexOrderedResults) {
  // The scheduler decides placement, never results: identical output vector
  // for any (kind, thread count) combination.
  auto body = [](size_t i) {
    return static_cast<double>(i * i) + 0.25 * static_cast<double>(i);
  };
  std::vector<double> want(333);
  for (size_t i = 0; i < want.size(); ++i) want[i] = body(i);
  for (SchedulerKind kind : {SchedulerKind::kForkJoin, SchedulerKind::kMorsel}) {
    for (size_t threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      std::vector<double> got =
          ParallelMapWith<double>(kind, &pool, want.size(), 1, body);
      EXPECT_EQ(want, got) << SchedulerKindName(kind) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace autofeat
