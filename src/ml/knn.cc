#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace autofeat::ml {

Status Knn::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  size_t p = train.num_features();
  if (n == 0) return Status::InvalidArgument("empty training set");

  means_.assign(p, 0.0);
  stds_.assign(p, 1.0);
  for (size_t f = 0; f < p; ++f) {
    const auto& col = train.column(f);
    double sum = 0;
    for (double v : col) sum += v;
    means_[f] = sum / static_cast<double>(n);
    double var = 0;
    for (double v : col) var += (v - means_[f]) * (v - means_[f]);
    var /= static_cast<double>(n);
    stds_[f] = var > 0 ? std::sqrt(var) : 1.0;
  }

  train_rows_.assign(n, std::vector<double>(p));
  for (size_t r = 0; r < n; ++r) {
    for (size_t f = 0; f < p; ++f) {
      train_rows_[r][f] = Normalize(f, train.at(r, f));
    }
  }
  train_labels_ = train.labels();
  return Status::OK();
}

double Knn::PredictProba(const Dataset& data, size_t row) const {
  size_t n = train_rows_.size();
  if (n == 0) return 0.5;
  size_t p = means_.size();

  std::vector<double> query(p);
  for (size_t f = 0; f < p && f < data.num_features(); ++f) {
    query[f] = Normalize(f, data.at(row, f));
  }

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int>> dists;  // (distance², label)
  dists.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    double d = 0;
    for (size_t f = 0; f < p; ++f) {
      double diff = query[f] - train_rows_[r][f];
      d += diff * diff;
    }
    dists.emplace_back(d, train_labels_[r]);
  }
  size_t k = std::min(options_.k, n);
  std::nth_element(dists.begin(), dists.begin() + static_cast<ptrdiff_t>(k - 1),
                   dists.end());
  double positives = 0;
  for (size_t i = 0; i < k; ++i) positives += dists[i].second;
  return positives / static_cast<double>(k);
}

}  // namespace autofeat::ml
