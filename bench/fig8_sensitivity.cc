// Figure 8: parameter sensitivity of AutoFeat.
//   (a) kappa sweep: accuracy + feature-selection time as the per-table
//       feature budget grows.
//   (b) tau sweep, averaged over datasets.
//   (c) tau sweep on `covertype` (perfect joins exist: tau = 1 peaks).
//   (d) tau sweep on `school` (no perfect joins: tau = 1 yields no output).

#include <cstdio>

#include "harness.h"

namespace {

using namespace autofeat;
using namespace autofeat::benchx;

struct SweepPoint {
  double accuracy = 0.0;
  double fs_seconds = 0.0;
  bool has_output = false;
};

SweepPoint RunWithConfig(const datagen::BuiltLake& built,
                         const DatasetRelationGraph& drg,
                         const AutoFeatConfig& config) {
  AutoFeat engine(&built.lake, &drg, config);
  auto result =
      engine.Augment(built.base_table, built.label_column,
                     ml::ModelKind::kLightGbm);
  result.status().Abort("AutoFeat sweep");
  SweepPoint point;
  point.accuracy = result->accuracy;
  point.fs_seconds = result->discovery.feature_selection_seconds;
  point.has_output = !result->discovery.ranked.empty();
  return point;
}

AutoFeatConfig SweepConfig() {
  AutoFeatConfig config;
  config.sample_rows = FullMode() ? 2000 : 1000;
  config.max_paths = FullMode() ? 2000 : 600;
  return config;
}

}  // namespace

int main() {
  PrintModeBanner("Figure 8: sensitivity to kappa and tau");

  // Datasets used for the sweeps (quick mode trims the lineup).
  std::vector<std::string> names = FullMode()
      ? std::vector<std::string>{"credit", "eyemove", "covertype", "jannis",
                                 "miniboone", "steel", "school",
                                 "bioresponse"}
      : std::vector<std::string>{"credit", "covertype", "steel", "school"};

  struct Prepared {
    datagen::DatasetSpec spec;
    datagen::BuiltLake built;
    DatasetRelationGraph drg;
  };
  std::vector<Prepared> lakes;
  for (const auto& name : names) {
    auto spec = ScaledSpec(*datagen::FindDataset(name));
    datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
    auto drg = BuildSettingDrg(built, Setting::kBenchmark);
    drg.status().Abort();
    lakes.push_back(Prepared{spec, std::move(built), std::move(*drg)});
  }

  // ---- (a) kappa sweep ----------------------------------------------------
  std::printf("\n(a) sensitivity to kappa (tau = 0.65):\n");
  std::printf("%6s %10s %14s\n", "kappa", "avg_acc", "avg_fs_time_s");
  PrintRule(34);
  for (size_t kappa : {2, 4, 6, 8, 10, 15, 20}) {
    double acc = 0, fs = 0;
    for (const auto& lake : lakes) {
      AutoFeatConfig config = SweepConfig();
      config.kappa = kappa;
      SweepPoint p = RunWithConfig(lake.built, lake.drg, config);
      acc += p.accuracy;
      fs += p.fs_seconds;
    }
    std::printf("%6zu %10.3f %14.3f\n", kappa, acc / lakes.size(),
                fs / lakes.size());
  }

  // ---- (b-d) tau sweep ------------------------------------------------------
  std::printf("\n(b) sensitivity to tau (kappa = 15): average over datasets, "
              "plus covertype and school close-ups\n");
  std::printf("%6s %10s %14s %14s %16s\n", "tau", "avg_acc", "avg_fs_time_s",
              "covertype_acc", "school_acc");
  PrintRule(66);
  for (int step = 1; step <= 20; ++step) {
    double tau = 0.05 * step;
    double acc = 0, fs = 0;
    double covertype_acc = -1, school_acc = -1;
    bool school_output = true;
    for (const auto& lake : lakes) {
      AutoFeatConfig config = SweepConfig();
      config.tau = tau;
      SweepPoint p = RunWithConfig(lake.built, lake.drg, config);
      acc += p.accuracy;
      fs += p.fs_seconds;
      if (lake.spec.name == "covertype") covertype_acc = p.accuracy;
      if (lake.spec.name == "school") {
        school_acc = p.accuracy;
        school_output = p.has_output;
      }
    }
    char school_txt[32];
    if (school_acc < 0) {
      std::snprintf(school_txt, sizeof(school_txt), "%16s", "-");
    } else if (!school_output) {
      std::snprintf(school_txt, sizeof(school_txt), "%16s", "no output");
    } else {
      std::snprintf(school_txt, sizeof(school_txt), "%16.3f", school_acc);
    }
    std::printf("%6.2f %10.3f %14.3f %14.3f %s\n", tau, acc / lakes.size(),
                fs / lakes.size(), covertype_acc, school_txt);
  }
  std::printf("\nexpected shape: flat for tau <= 0.6, pruning effects above; "
              "tau = 1 peaks on covertype (perfect joins) and yields no "
              "output on school (none).\n");
  return 0;
}
