// Ablation of the join design choices of §IV-B: AutoFeat uses *left* joins
// with *cardinality normalisation* to keep the base rows and the label
// distribution intact. This harness joins a full lake with each of the
// four (type x normalisation) combinations and reports row count drift,
// class-balance drift and downstream accuracy.

#include <cstdio>

#include "harness.h"
#include "relational/join.h"

namespace {

using namespace autofeat;
using namespace autofeat::benchx;

double PositiveRate(const Table& table, const std::string& label_column) {
  auto label = table.GetColumn(label_column);
  label.status().Abort();
  double positives = 0;
  for (size_t i = 0; i < (*label)->size(); ++i) {
    positives += static_cast<double>((*label)->GetInt64(i));
  }
  return (*label)->size() == 0
             ? 0.0
             : positives / static_cast<double>((*label)->size());
}

}  // namespace

int main() {
  PrintModeBanner("Ablation: join type and cardinality normalisation "
                  "(paper §IV-B)");

  // A lake whose satellites include 1:N relationships: duplicate some
  // right-side keys by sampling with replacement.
  auto spec = ScaledSpec(*datagen::FindDataset("credit"));
  datagen::BuiltLake built = datagen::BuildPaperLake(spec, 42);
  auto drg = BuildSettingDrg(built, Setting::kBenchmark);
  drg.status().Abort();
  size_t base_node = *drg->NodeId(built.base_table);

  // Duplicate rows inside every satellite (simulates 1:N joins).
  DataLake lake_1n;
  for (const auto& table : built.lake.tables()) {
    if (table.name() == built.base_table) {
      lake_1n.AddTable(table).Abort();
      continue;
    }
    Rng rng(7);
    std::vector<size_t> rows;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      rows.push_back(r);
      // ~30% of rows appear twice more.
      if (rng.Bernoulli(0.3)) {
        rows.push_back(r);
        rows.push_back(r);
      }
    }
    rng.Shuffle(&rows);
    lake_1n.AddTable(table.TakeRows(rows)).Abort();
  }

  struct Variant {
    const char* name;
    JoinType type;
    bool normalize;
  };
  const Variant variants[] = {
      {"left+norm (paper)", JoinType::kLeft, true},
      {"left, no norm", JoinType::kLeft, false},
      {"inner+norm", JoinType::kInner, true},
      {"inner, no norm", JoinType::kInner, false},
  };

  auto base = lake_1n.GetTable(built.base_table);
  base.status().Abort();
  double base_rate = PositiveRate(**base, built.label_column);
  std::printf("\nbase table: %zu rows, positive rate %.3f\n\n",
              (*base)->num_rows(), base_rate);
  std::printf("%-20s %10s %10s %12s %8s\n", "variant", "rows", "pos_rate",
              "rate_drift", "acc");
  PrintRule(64);

  for (const Variant& variant : variants) {
    // Join all direct neighbours with the variant's join semantics.
    Table current = **base;
    Rng rng(11);
    JoinOptions options;
    options.type = variant.type;
    options.normalize_cardinality = variant.normalize;
    for (size_t neighbor : drg->Neighbors(base_node)) {
      auto right = lake_1n.GetTable(drg->NodeName(neighbor));
      if (!right.ok()) continue;
      for (const JoinStep& edge : drg->BestEdgesBetween(base_node, neighbor)) {
        if (!current.HasColumn(edge.from_column)) continue;
        auto joined = Join(current, edge.from_column, **right, edge.to_column,
                           &rng, options);
        if (joined.ok() && joined->stats.matched_rows > 0 &&
            joined->table.num_rows() > 0) {
          current = std::move(joined->table);
        }
        break;
      }
    }
    double rate = PositiveRate(current, built.label_column);
    auto eval = ml::TrainAndEvaluate(current, built.label_column,
                                     ml::ModelKind::kLightGbm);
    double accuracy = eval.ok() ? eval->accuracy : 0.0;
    std::printf("%-20s %10zu %10.3f %+12.3f %8.3f\n", variant.name,
                current.num_rows(), rate, rate - base_rate, accuracy);
  }
  std::printf("\nexpected: only left+norm preserves the base row count and "
              "class balance; no-norm variants inflate rows and drift the "
              "positive rate; inner joins drop unmatched rows.\n"
              "note the *inflated* accuracy of the no-norm variants: "
              "duplicated base rows land on both sides of the train/test "
              "split, so the estimate is invalid — exactly the 'skewed "
              "class distribution / altered ML task' hazard of §IV-B.\n");
  return 0;
}
