#include "obs/memory.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace autofeat::obs {

int64_t ProcessPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // bytes
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

void RecordProcessPeakRss(MetricsRegistry* metrics) {
  Gauge* gauge =
      GetGauge(metrics, "process.peak_rss_bytes", /*deterministic=*/false);
  UpdateMax(gauge, ProcessPeakRssBytes());
}

void AddBytesWithPeak(Gauge* bytes, Gauge* bytes_peak, int64_t delta) {
  if (bytes == nullptr) return;
  bytes->Add(delta);
  UpdateMax(bytes_peak, bytes->value());
}

}  // namespace autofeat::obs
