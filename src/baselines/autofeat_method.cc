#include "baselines/autofeat_method.h"

namespace autofeat::baselines {

Result<AugmenterResult> AutoFeatMethod::Augment(
    const DataLake& lake, const DatasetRelationGraph& drg,
    const std::string& base_table, const std::string& label_column) {
  AutoFeat engine(&lake, &drg, config_);
  AF_ASSIGN_OR_RETURN(
      last_, engine.Augment(base_table, label_column, selection_model_));
  AugmenterResult result;
  result.augmented = last_.augmented;
  result.feature_selection_seconds = last_.discovery.feature_selection_seconds;
  result.total_seconds = last_.total_seconds;
  result.tables_joined = last_.best_path.tables_joined();
  return result;
}

}  // namespace autofeat::baselines
