// Missing-value handling. The paper's methodology (§V-B): "Missing values
// are handled by imputation with the most common value corresponding to the
// feature."

#ifndef AUTOFEAT_RELATIONAL_IMPUTATION_H_
#define AUTOFEAT_RELATIONAL_IMPUTATION_H_

#include "table/column.h"
#include "table/table.h"

namespace autofeat {

/// A copy of `column` with nulls replaced by the most frequent non-null
/// value (ties broken by first occurrence). An all-null column is filled
/// with a type-appropriate default (0 / "").
Column ImputeMostFrequent(const Column& column);

/// Applies ImputeMostFrequent to every column of `table`.
Table ImputeTableMostFrequent(const Table& table);

}  // namespace autofeat

#endif  // AUTOFEAT_RELATIONAL_IMPUTATION_H_
