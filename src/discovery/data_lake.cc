#include "discovery/data_lake.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "discovery/lsh_index.h"
#include "discovery/sketch_cache.h"
#include "obs/metrics.h"
#include "table/columnar.h"
#include "table/csv.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace autofeat {

Result<LakeFormat> ParseLakeFormat(const std::string& name) {
  const std::string lower = ToLower(Trim(name));
  if (lower == "csv") return LakeFormat::kCsv;
  if (lower == "columnar") return LakeFormat::kColumnar;
  return Status::InvalidArgument("unknown lake format: \"" + name +
                                 "\" (valid values: csv, columnar)");
}

namespace {

// Shared directory walk: every regular `extension` file, sorted — the
// lake's table order must not depend on directory enumeration order.
Result<std::vector<std::string>> SortedFilesWithExtension(
    const std::string& directory, const std::string& extension) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::IOError("not a directory: " + directory);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

Status DataLake::AddTable(Table table) {
  return AddTable(std::make_shared<const Table>(std::move(table)));
}

Status DataLake::AddTable(std::shared_ptr<const Table> table) {
  if (table == nullptr || table->name().empty()) {
    return Status::InvalidArgument("lake tables must be named");
  }
  if (index_.count(table->name()) > 0) {
    return Status::InvalidArgument("duplicate table name: " + table->name());
  }
  index_[table->name()] = tables_.size();
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status DataLake::ReplaceTable(Table table) {
  auto it = index_.find(table.name());
  if (it == index_.end()) {
    return Status::KeyError("no such table to replace: " + table.name());
  }
  tables_[it->second] = std::make_shared<const Table>(std::move(table));
  return Status::OK();
}

Status DataLake::RemoveTable(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no such table to remove: " + name);
  }
  tables_.erase(tables_.begin() + static_cast<ptrdiff_t>(it->second));
  index_.clear();
  for (size_t i = 0; i < tables_.size(); ++i) index_[tables_[i]->name()] = i;
  kfk_.erase(std::remove_if(kfk_.begin(), kfk_.end(),
                            [&](const KfkConstraint& k) {
                              return k.from_table == name ||
                                     k.to_table == name;
                            }),
             kfk_.end());
  return Status::OK();
}

Status DataLake::AppendRows(const std::string& name, const Table& rows) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no such table to append to: " + name);
  }
  const Table& current = *tables_[it->second];
  if (!(current.schema().fields() == rows.schema().fields())) {
    return Status::InvalidArgument(
        "append schema mismatch for table " + name +
        ": column names and types must match the stored table exactly");
  }
  Table updated(current.name());
  for (size_t c = 0; c < current.num_columns(); ++c) {
    Column merged = current.column(c);
    merged.Reserve(current.num_rows() + rows.num_rows());
    const Column& extra = rows.column(c);
    for (size_t r = 0; r < rows.num_rows(); ++r) merged.AppendFrom(extra, r);
    AF_RETURN_NOT_OK(
        updated.AddColumn(current.schema().field(c).name, std::move(merged)));
  }
  tables_[it->second] = std::make_shared<const Table>(std::move(updated));
  return Status::OK();
}

Result<const Table*> DataLake::GetTable(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no such table in lake: " + name);
  }
  return tables_[it->second].get();
}

Result<std::shared_ptr<const Table>> DataLake::GetTableShared(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no such table in lake: " + name);
  }
  return tables_[it->second];
}

std::vector<std::string> DataLake::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name());
  return names;
}

Result<DataLake> DataLake::FromCsvDirectory(const std::string& directory) {
  AF_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                      SortedFilesWithExtension(directory, ".csv"));
  DataLake lake;
  for (const auto& path : paths) {
    AF_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path));
    AF_RETURN_NOT_OK(lake.AddTable(std::move(table)));
  }
  return lake;
}

Result<DataLake> DataLake::FromColumnarDirectory(
    const std::string& directory) {
  AF_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                      SortedFilesWithExtension(directory, kColumnarExtension));
  DataLake lake;
  for (const auto& path : paths) {
    AF_ASSIGN_OR_RETURN(Table table, ReadColumnarFile(path));
    AF_RETURN_NOT_OK(lake.AddTable(std::move(table)));
  }
  return lake;
}

Result<DataLake> DataLake::FromDirectory(const std::string& directory,
                                         LakeFormat format) {
  switch (format) {
    case LakeFormat::kCsv:
      return FromCsvDirectory(directory);
    case LakeFormat::kColumnar:
      return FromColumnarDirectory(directory);
  }
  return Status::InvalidArgument("unhandled lake format");
}

Result<DatasetRelationGraph> BuildDrgFromKfk(const DataLake& lake,
                                             obs::MetricsRegistry* metrics) {
  obs::Counter* edges_added = obs::GetCounter(metrics, "drg.edges_added");
  DatasetRelationGraph drg;
  for (const auto& table : lake.tables()) drg.AddNode(table.name());
  for (const auto& kfk : lake.kfk_constraints()) {
    // Validate the constraint against the lake before ingesting it.
    AF_ASSIGN_OR_RETURN(const Table* from, lake.GetTable(kfk.from_table));
    AF_ASSIGN_OR_RETURN(const Table* to, lake.GetTable(kfk.to_table));
    if (!from->HasColumn(kfk.from_column)) {
      return Status::KeyError("KFK references missing column " +
                              kfk.from_table + "." + kfk.from_column);
    }
    if (!to->HasColumn(kfk.to_column)) {
      return Status::KeyError("KFK references missing column " +
                              kfk.to_table + "." + kfk.to_column);
    }
    AF_RETURN_NOT_OK(drg.AddEdge(kfk.from_table, kfk.from_column,
                                 kfk.to_table, kfk.to_column,
                                 /*weight=*/1.0));
    obs::Increment(edges_added);
  }
  return drg;
}

namespace {

// Every (i, j) pair of the upper triangle, ascending. The triangle above
// the diagonal has n(n-1)/2 pairs.
std::vector<std::pair<size_t, size_t>> AllTablePairs(size_t n) {
  std::vector<std::pair<size_t, size_t>> pairs;
  if (n > 1) pairs.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

// Fan the scoring of `pairs` (ascending (i, j) table-index pairs — the full
// upper triangle or an LSH candidate subset of it) out over `pool` and fold
// the matches into a DRG sequentially in (i, j) order — edge insertion
// order (and thus the graph) is independent of the thread count.
// `score_pair(i, j)` must be safe to call concurrently for distinct pairs.
Result<DatasetRelationGraph> BuildDrgFromPairScores(
    const DataLake& lake, const std::vector<std::pair<size_t, size_t>>& pairs,
    ThreadPool* pool, obs::MetricsRegistry* metrics,
    const std::function<std::vector<ColumnMatch>(size_t, size_t)>&
        score_pair) {
  obs::Counter* pairs_scored = obs::GetCounter(metrics, "drg.pairs_scored");
  obs::Counter* pairs_matched = obs::GetCounter(metrics, "drg.pairs_matched");
  obs::Counter* edges_added = obs::GetCounter(metrics, "drg.edges_added");
  DatasetRelationGraph drg;
  for (const auto& table : lake.tables()) drg.AddNode(table.name());
  const auto& tables = lake.tables();

  std::vector<std::vector<ColumnMatch>> matches =
      ParallelMap<std::vector<ColumnMatch>>(
          pool, pairs.size(), /*grain=*/1, [&](size_t p) {
            return score_pair(pairs[p].first, pairs[p].second);
          });
  obs::Increment(pairs_scored, pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& [i, j] = pairs[p];
    if (!matches[p].empty()) obs::Increment(pairs_matched);
    for (const auto& match : matches[p]) {
      AF_RETURN_NOT_OK(drg.AddEdge(tables[i].name(), match.left_column,
                                   tables[j].name(), match.right_column,
                                   match.score));
      obs::Increment(edges_added);
    }
  }
  return drg;
}

}  // namespace

Result<DatasetRelationGraph> BuildDrgByDiscovery(const DataLake& lake,
                                                 const MatchOptions& options,
                                                 ThreadPool* pool,
                                                 obs::MetricsRegistry* metrics) {
  // Sketch every column once (in parallel over tables), then score pairs
  // over the shared cache instead of re-scanning column values per pair.
  LakeSketchCache cache =
      LakeSketchCache::Build(lake, options.max_sample_values, pool, metrics,
                             options.memory_budget_bytes);

  // Candidate generation. LSH filtering is sound only while every
  // reportable edge needs value overlap (a collision witness); when the
  // threshold is reachable on name evidence alone, fall back to the
  // exhaustive sweep instead of silently dropping name-only edges.
  const size_t n = lake.num_tables();
  const size_t total_pairs = n > 1 ? n * (n - 1) / 2 : 0;
  std::vector<std::pair<size_t, size_t>> pairs;
  if (options.candidate_mode == CandidateMode::kLsh &&
      options.threshold > options.name_weight) {
    LshCandidateIndex lsh =
        LshCandidateIndex::Build(lake, cache, options.lsh, pool, metrics);
    pairs = lsh.candidate_table_pairs();
  } else {
    pairs = AllTablePairs(lake.num_tables());
  }
  obs::Increment(obs::GetCounter(metrics, "drg.candidate_pairs"),
                 pairs.size());
  obs::Increment(obs::GetCounter(metrics, "drg.pairs_pruned"),
                 total_pairs - pairs.size());

  // Each pair served from the cache would have re-sketched both tables'
  // columns under the naive formulation — that saved work is the hit count.
  obs::Counter* sketch_hits = obs::GetCounter(metrics, "sketch_cache.hits");
  const auto& tables = lake.tables();
  return BuildDrgFromPairScores(
      lake, pairs, pool, metrics, [&](size_t i, size_t j) {
        obs::Increment(sketch_hits,
                       tables[i].num_columns() + tables[j].num_columns());
        // Pins keep both entries alive for the duration of the match even
        // if a concurrent pair's rebuild evicts them under a budget.
        LakeSketchCache::TableSketchesPin left = cache.GetOrBuild(i);
        LakeSketchCache::TableSketchesPin right = cache.GetOrBuild(j);
        return MatchSchemas(tables[i], *left, tables[j], *right, options);
      });
}

Result<DatasetRelationGraph> BuildDrgWithMatcher(
    const DataLake& lake,
    const std::function<std::vector<ColumnMatch>(const Table&, const Table&)>&
        matcher,
    ThreadPool* pool, obs::MetricsRegistry* metrics) {
  const auto& tables = lake.tables();
  return BuildDrgFromPairScores(
      lake, AllTablePairs(tables.size()), pool, metrics,
      [&](size_t i, size_t j) { return matcher(tables[i], tables[j]); });
}

}  // namespace autofeat
