// Memory accounting.
//
// Byte gauges follow the convention `<component>.bytes` (current
// footprint) + `<component>.bytes_peak` (high-water mark, maintained by
// AddBytesWithPeak). Footprints come from the ApproxBytes() methods on
// Table/Column/KeyDictionary/JoinKeyIndex and the sketch structs — all
// size-based (element counts, not container capacity), so equal content
// reports equal bytes and the gauges stay deterministic. Process peak RSS
// is the one OS-level reading; it is scheduling- and allocator-dependent,
// so RecordProcessPeakRss registers it non-deterministic (excluded from
// the digest, like thread_pool.*).

#ifndef AUTOFEAT_OBS_MEMORY_H_
#define AUTOFEAT_OBS_MEMORY_H_

#include <cstdint>

#include "obs/metrics.h"

namespace autofeat::obs {

/// \brief Peak resident set size of this process in bytes; 0 when the
/// platform has no getrusage.
int64_t ProcessPeakRssBytes();

/// \brief Records `process.peak_rss_bytes` as a non-deterministic gauge.
/// Null-safe no-op.
void RecordProcessPeakRss(MetricsRegistry* metrics);

/// \brief Adds `delta` to a byte gauge and raises its high-water gauge to
/// at least the new total. Both gauges null-safe. With concurrent
/// positive adds the peak still ends >= the final total: whichever add
/// lands last reads a value covering every earlier one.
void AddBytesWithPeak(Gauge* bytes, Gauge* bytes_peak, int64_t delta);

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_MEMORY_H_
