// Worker-thread tracing and memory accounting: per-thread span buffers
// merge into one tree, Chrome trace exports are well-formed (every event
// carries ph/ts/pid/tid, flow arrows pair up), the deterministic digest
// ignores worker spans entirely (it must not depend on how many helper
// lanes ran), and the byte-accounting gauges report nonzero, growing,
// peak-consistent values.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "discovery/join_index_cache.h"
#include "obs/chrome_trace.h"
#include "obs/json_value.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "table/table.h"
#include "util/thread_pool.h"

namespace autofeat {
namespace {

TEST(WorkerSpanTest, MergesPerThreadBuffersUnderEnqueueParent) {
  obs::Tracer tracer;
  constexpr size_t kTasks = 16;
  {
    obs::ScopedSpan phase(&tracer, "phase");
    ThreadPool pool(4);
    pool.set_tracer(&tracer);
    obs::TaskContext ctx = obs::CaptureTaskContext(&tracer);
    ParallelFor(&pool, 0, kTasks, /*grain=*/1, [&](size_t) {
      obs::ScopedWorkerSpan span(ctx, "task");
    });
  }

  EXPECT_EQ(tracer.num_spans(), 1u);  // Orchestration spans only.
  EXPECT_GE(tracer.num_worker_spans(), kTasks);

  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_GE(spans.size(), 1 + kTasks);
  EXPECT_EQ(spans[0].name, "phase");
  EXPECT_FALSE(spans[0].worker);
  size_t tasks = 0;
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_TRUE(spans[i].worker);
    // Ids stay unique and 1-based across the merge.
    EXPECT_EQ(spans[i].id, i + 1);
    if (spans[i].name != "task") continue;
    ++tasks;
    // Every task chains back to the span open at the enqueue site: either
    // directly (chunks the orchestration thread ran inline) or through
    // the pool lane's thread_pool.worker span.
    const obs::SpanRecord& parent = spans.at(spans[i].parent - 1);
    if (parent.name == "thread_pool.worker") {
      EXPECT_EQ(parent.parent, spans[0].id);
    } else {
      EXPECT_EQ(spans[i].parent, spans[0].id);
    }
    EXPECT_GE(spans[i].end_seconds, spans[i].start_seconds);
  }
  EXPECT_EQ(tasks, kTasks);
}

TEST(WorkerSpanTest, NestedWorkerSpansParentLocally) {
  obs::Tracer tracer;
  obs::TaskContext ctx = obs::CaptureTaskContext(&tracer);
  {
    obs::ScopedWorkerSpan outer(ctx, "outer_task");
    obs::ScopedWorkerSpan inner(ctx, "inner_task");
  }
  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer_task");
  EXPECT_EQ(spans[1].name, "inner_task");
  // The nested span parents under the enclosing worker span, not the
  // enqueue-site orchestration parent.
  EXPECT_EQ(spans[1].parent, spans[0].id);
  // Only the top-level span carries the flow arrow.
  EXPECT_NE(spans[0].flow_id, 0u);
  EXPECT_EQ(spans[1].flow_id, 0u);
}

TEST(WorkerSpanTest, ContextFreeSpanAdoptsOpenOrchestrationSpan) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan build(&tracer, "build");
    obs::ScopedWorkerSpan span(&tracer, "work_item");
  }
  std::vector<obs::SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].name, "work_item");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].flow_id, 0u);
}

TEST(WorkerSpanTest, NullSafety) {
  obs::TaskContext null_ctx = obs::CaptureTaskContext(nullptr);
  EXPECT_EQ(null_ctx.tracer, nullptr);
  obs::ScopedWorkerSpan a(null_ctx, "nothing");
  obs::ScopedWorkerSpan b(static_cast<obs::Tracer*>(nullptr), "nothing");
  // Must not crash, must not record.
}

TEST(WorkerSpanTest, DigestIgnoresWorkerSpans) {
  // Worker-span COUNT is scheduling-dependent (helper lanes), so the
  // deterministic projection must exclude them entirely: a tracer with
  // many worker spans digests identically to one with none.
  obs::MetricsRegistry registry;
  registry.GetCounter("work.done")->Increment(5);

  obs::Tracer quiet;
  { obs::ScopedSpan s(&quiet, "phase"); }
  obs::Tracer busy;
  {
    obs::ScopedSpan s(&busy, "phase");
    ThreadPool pool(4);
    pool.set_tracer(&busy);
    obs::TaskContext ctx = obs::CaptureTaskContext(&busy);
    ParallelFor(&pool, 0, 32, /*grain=*/1,
                [&](size_t) { obs::ScopedWorkerSpan span(ctx, "task"); });
  }
  EXPECT_GT(busy.num_worker_spans(), 0u);
  EXPECT_EQ(obs::DeterministicDigest(registry, &quiet),
            obs::DeterministicDigest(registry, &busy));
}

TEST(WorkerSpanTest, VolatileReportMarksWorkerSpans) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  {
    obs::ScopedSpan s(&tracer, "phase");
    obs::TaskContext ctx = obs::CaptureTaskContext(&tracer);
    obs::ScopedWorkerSpan w(ctx, "task");
  }
  std::string full = obs::JsonReport(registry, &tracer);
  EXPECT_TRUE(obs::JsonIsValid(full));
  EXPECT_NE(full.find("\"worker\": true"), std::string::npos);
  EXPECT_NE(full.find("\"flow\": "), std::string::npos);

  obs::ReportOptions projection;
  projection.include_timings = false;
  projection.include_volatile = false;
  projection.include_digest = false;
  std::string deterministic = obs::JsonReport(registry, &tracer, projection);
  EXPECT_EQ(deterministic.find("task"), std::string::npos);
  EXPECT_NE(deterministic.find("phase"), std::string::npos);
}

// --- Chrome trace export ---

TEST(ChromeTraceTest, EveryEventHasRequiredFieldsAndMultipleThreads) {
  obs::Tracer tracer;
  {
    obs::ScopedSpan phase(&tracer, "phase");
    ThreadPool pool(4);
    pool.set_tracer(&tracer);
    obs::TaskContext ctx = obs::CaptureTaskContext(&tracer);
    ParallelFor(&pool, 0, 64, /*grain=*/1, [&](size_t i) {
      obs::ScopedWorkerSpan span(ctx, "task");
      volatile size_t sink = 0;
      for (size_t k = 0; k < 10000 + i; ++k) sink = sink + k;
    });
  }

  std::string json = obs::ChromeTraceJson(tracer);
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->items.size(), 0u);

  std::set<double> tids;
  size_t flow_starts = 0, flow_finishes = 0, complete = 0;
  for (const obs::JsonValue& event : events->items) {
    ASSERT_TRUE(event.is_object());
    const obs::JsonValue* ph = event.Find("ph");
    const obs::JsonValue* ts = event.Find("ts");
    const obs::JsonValue* pid = event.Find("pid");
    const obs::JsonValue* tid = event.Find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_TRUE(ph->is_string());
    EXPECT_TRUE(ts->is_number());
    EXPECT_TRUE(pid->is_number());
    EXPECT_TRUE(tid->is_number());
    if (ph->str != "M") tids.insert(tid->number);
    if (ph->str == "s") ++flow_starts;
    if (ph->str == "f") ++flow_finishes;
    if (ph->str == "X") {
      ++complete;
      const obs::JsonValue* dur = event.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
  }
  // The pool ran tasks on at least one worker thread besides the
  // orchestrator, and every consumed flow has both ends.
  EXPECT_GE(tids.size(), 2u);
  EXPECT_GE(flow_starts, 1u);
  EXPECT_GE(flow_finishes, 1u);
  EXPECT_GT(complete, 0u);
}

TEST(ChromeTraceTest, OpenSpansEmitBeginEventsAndHostileNamesSurvive) {
  obs::Tracer tracer;
  size_t open = tracer.BeginSpan("open \"phase\"\\with\nhostile name");
  (void)open;  // Deliberately left open.
  std::string json = obs::ChromeTraceJson(tracer);
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found_begin = false;
  for (const obs::JsonValue& event : events->items) {
    const obs::JsonValue* ph = event.Find("ph");
    if (ph != nullptr && ph->str == "B") found_begin = true;
  }
  EXPECT_TRUE(found_begin);
}

// --- Memory accounting ---

TEST(MemoryAccountingTest, TableApproxBytesGrowsWithContent) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn("id", Column::Int64s({1, 2, 3})).ok());
  size_t base = t.ApproxBytes();
  EXPECT_GT(base, 0u);
  ASSERT_TRUE(
      t.AddColumn("name", Column::Strings({"ann", "bob", "cid"})).ok());
  size_t with_strings = t.ApproxBytes();
  EXPECT_GT(with_strings, base);
  // Equal content reports equal bytes (the accounting is size-based, so
  // the gauges derived from it are deterministic).
  Table u("t");
  ASSERT_TRUE(u.AddColumn("id", Column::Int64s({1, 2, 3})).ok());
  ASSERT_TRUE(
      u.AddColumn("name", Column::Strings({"ann", "bob", "cid"})).ok());
  EXPECT_EQ(u.ApproxBytes(), with_strings);
}

TEST(MemoryAccountingTest, JoinIndexCacheBytesAfterPrewarm) {
  datagen::LakeSpec spec;
  spec.rows = 200;
  spec.joinable_tables = 4;
  spec.total_features = 20;
  datagen::BuiltLake built = datagen::BuildLake(spec);
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());

  obs::MetricsRegistry registry;
  JoinIndexCache cache(&built.lake, /*seed=*/42, &registry);
  EXPECT_EQ(registry.GaugeValue("join_index_cache.bytes"), 0);
  cache.Prewarm(*drg, /*pool=*/nullptr);
  int64_t bytes = registry.GaugeValue("join_index_cache.bytes");
  int64_t peak = registry.GaugeValue("join_index_cache.bytes_peak");
  EXPECT_GT(bytes, 0);
  EXPECT_GE(peak, bytes);  // High-water mark never trails the level.
}

TEST(MemoryAccountingTest, AddBytesWithPeakKeepsHighWater) {
  obs::MetricsRegistry registry;
  obs::Gauge* bytes = registry.GetGauge("x.bytes");
  obs::Gauge* peak = registry.GetGauge("x.bytes_peak");
  obs::AddBytesWithPeak(bytes, peak, 100);
  obs::AddBytesWithPeak(bytes, peak, 50);
  EXPECT_EQ(bytes->value(), 150);
  EXPECT_EQ(peak->value(), 150);
  obs::AddBytesWithPeak(bytes, peak, -120);  // Eviction / release.
  EXPECT_EQ(bytes->value(), 30);
  EXPECT_EQ(peak->value(), 150);
  // Null-safe.
  obs::AddBytesWithPeak(nullptr, nullptr, 10);
}

TEST(MemoryAccountingTest, ProcessPeakRssIsPositiveAndNonDeterministic) {
  EXPECT_GT(obs::ProcessPeakRssBytes(), 0);

  obs::MetricsRegistry registry;
  registry.GetCounter("work.done")->Increment(1);
  std::string before = obs::DeterministicDigest(registry, nullptr);
  obs::RecordProcessPeakRss(&registry);
  EXPECT_GT(registry.GaugeValue("process.peak_rss_bytes"), 0);
  // RSS is machine/scheduling state, so the gauge must be registered
  // non-deterministic and leave the digest unchanged.
  EXPECT_EQ(obs::DeterministicDigest(registry, nullptr), before);
  // Null-safe.
  obs::RecordProcessPeakRss(nullptr);
}

}  // namespace
}  // namespace autofeat
