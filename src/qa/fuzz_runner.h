// Fuzz campaign driver: generates one lake per seed, evaluates the
// invariant registry over each, and (optionally) shrinks every violation
// and writes a self-contained repro directory. Seeds are independent tasks
// fanned out over a thread pool and merged in seed order, so a campaign's
// report is byte-identical at any --threads value — determinism checked by
// its own invariants, applied to itself.

#ifndef AUTOFEAT_QA_FUZZ_RUNNER_H_
#define AUTOFEAT_QA_FUZZ_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "qa/invariants.h"
#include "qa/lake_fuzzer.h"
#include "util/status.h"

namespace autofeat::qa {

struct FuzzOptions {
  uint64_t seed_start = 1;
  size_t num_seeds = 50;
  /// Worker threads for the seed sweep (0 = hardware, 1 = sequential).
  size_t threads = 1;
  /// Where shrunk repros are written; empty disables repro emission.
  std::string repro_dir;
  /// Shrink failing lakes before reporting/writing them.
  bool shrink = true;
  /// Include the deliberately wrong planted invariant (self-test mode).
  bool include_planted = false;
  /// Restrict the run to these invariant names (empty = all).
  std::vector<std::string> invariant_filter;
  LakeFuzzOptions fuzz;
  /// Optional campaign metrics (qa.seeds, qa.checks, qa.failures).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional tracer: the campaign opens a `fuzz.campaign` span and each
  /// seed records a `fuzz.seed` worker span (timings excluded from the
  /// deterministic digest, so the report stays thread-count independent).
  obs::Tracer* tracer = nullptr;
};

struct FuzzFailure {
  uint64_t seed = 0;
  std::string invariant;
  std::string message;
  /// Where the repro was written ("" when repro emission is off).
  std::string repro_dir;
  /// Shape of the (possibly shrunk) failing lake.
  size_t tables = 0;
  size_t max_columns = 0;
  size_t max_rows = 0;
};

struct FuzzReport {
  size_t seeds_run = 0;
  size_t invariants_per_seed = 0;
  size_t checks_run = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// Human-readable campaign summary (stable across thread counts).
  std::string Summary() const;
};

/// Runs the campaign. Returns an error only for setup problems (unknown
/// invariant name in the filter, unwritable repro dir); invariant
/// violations are reported in the FuzzReport, not as a Status.
Result<FuzzReport> RunFuzz(const FuzzOptions& options);

/// Replays one repro directory against the registry (all invariants, or
/// just the manifest's failing invariant when `manifest_only`).
Result<FuzzReport> ReplayRepro(const std::string& directory,
                               bool manifest_only = false);

}  // namespace autofeat::qa

#endif  // AUTOFEAT_QA_FUZZ_RUNNER_H_
