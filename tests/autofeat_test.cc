// Integration tests of the core AutoFeat engine (Algorithm 1 + 2) against
// lakes with known ground truth.

#include "core/autofeat.h"

#include <gtest/gtest.h>

#include "core/ranking.h"
#include "datagen/lake_builder.h"

namespace autofeat {
namespace {

datagen::BuiltLake MakeLake(bool star = false, uint64_t seed = 7) {
  datagen::LakeSpec spec;
  spec.name = "lk";
  spec.rows = 900;
  spec.joinable_tables = 6;
  spec.total_features = 24;
  spec.star_schema = star;
  spec.seed = seed;
  return datagen::BuildLake(spec);
}

AutoFeatConfig FastConfig() {
  AutoFeatConfig config;
  config.sample_rows = 600;
  config.top_k_paths = 3;
  return config;
}

TEST(RankingScoreTest, Formula) {
  std::vector<FeatureScore> rel{{"a", 0.4}, {"b", 0.2}};
  std::vector<FeatureScore> red{{"a", 0.1}};
  // (mean_rel + mean_red) / 2 = (0.3 + 0.1) / 2.
  EXPECT_NEAR(ComputeRankingScore(rel, red), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(ComputeRankingScore({}, {}), 0.0);
  EXPECT_NEAR(ComputeRankingScore(rel, {}), 0.15, 1e-12);
}

TEST(AutoFeatTest, DiscoverFindsRankedPaths) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());
  AutoFeat engine(&built.lake, &*drg, FastConfig());
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->ranked.empty());
  EXPECT_GT(result->paths_explored, 0u);
  EXPECT_GT(result->feature_selection_seconds, 0.0);
  EXPECT_LE(result->feature_selection_seconds, result->total_seconds);
  // Scores sorted descending.
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_GE(result->ranked[i - 1].score, result->ranked[i].score);
  }
}

TEST(AutoFeatTest, BestPathReachesDeepSignal) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeat engine(&built.lake, &*drg, FastConfig());
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->ranked.empty());
  // The top-ranked path must reach a table at the deepest relevant level
  // (the synthetic lake plants the strongest features there).
  const RankedPath& best = result->ranked.front();
  EXPECT_GE(best.path.length(), built.DeepestRelevantDepth());
  EXPECT_FALSE(best.selected_features.empty());
}

TEST(AutoFeatTest, MissingBaseTableOrLabelFails) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeat engine(&built.lake, &*drg, FastConfig());
  EXPECT_FALSE(engine.DiscoverFeatures("ghost", "label").ok());
  EXPECT_FALSE(engine.DiscoverFeatures(built.base_table, "ghost").ok());
}

TEST(AutoFeatTest, TauOnePrunesImperfectJoins) {
  auto built = MakeLake();  // key_coverage 0.9 -> no perfect joins.
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeatConfig config = FastConfig();
  config.tau = 1.0;
  AutoFeat engine(&built.lake, &*drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ranked.empty());
  EXPECT_GT(result->paths_pruned_quality, 0u);
}

TEST(AutoFeatTest, MaxHopsLimitsPathLength) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeatConfig config = FastConfig();
  config.max_hops = 1;
  AutoFeat engine(&built.lake, &*drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  for (const auto& rp : result->ranked) {
    EXPECT_EQ(rp.path.length(), 1u);
  }
}

TEST(AutoFeatTest, KappaOneSelectsAtMostOneFeaturePerBatch) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeatConfig config = FastConfig();
  config.kappa = 1;
  AutoFeat engine(&built.lake, &*drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  for (const auto& rp : result->ranked) {
    EXPECT_LE(rp.selected_features.size(), rp.path.length());
  }
}

TEST(AutoFeatTest, MaterializePreservesRowsAndAddsFeatures) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeat engine(&built.lake, &*drg, FastConfig());
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->ranked.empty());
  auto base = built.lake.GetTable(built.base_table);
  auto table = engine.MaterializeAugmentedTable(
      built.base_table, result->ranked.front(), built.label_column);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), (*base)->num_rows());
  EXPECT_GT(table->num_columns(), (*base)->num_columns());
  EXPECT_TRUE(table->HasColumn(built.label_column));
  // All base columns retained.
  for (const auto& name : (*base)->ColumnNames()) {
    EXPECT_TRUE(table->HasColumn(name)) << name;
  }
}

TEST(AutoFeatTest, AugmentImprovesOverBase) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeat engine(&built.lake, &*drg, FastConfig());
  auto base = built.lake.GetTable(built.base_table);
  auto base_eval = ml::TrainAndEvaluate(**base, built.label_column,
                                        ml::ModelKind::kLightGbm);
  ASSERT_TRUE(base_eval.ok());
  auto augmented = engine.Augment(built.base_table, built.label_column,
                                  ml::ModelKind::kLightGbm);
  ASSERT_TRUE(augmented.ok()) << augmented.status().ToString();
  EXPECT_GT(augmented->accuracy, base_eval->accuracy + 0.05);
  EXPECT_GE(augmented->total_seconds,
            augmented->discovery.total_seconds);
}

TEST(AutoFeatTest, AugmentFallsBackToBaseWhenNothingRanks) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeatConfig config = FastConfig();
  config.tau = 1.0;  // Prunes everything.
  AutoFeat engine(&built.lake, &*drg, config);
  auto augmented = engine.Augment(built.base_table, built.label_column,
                                  ml::ModelKind::kKnn);
  ASSERT_TRUE(augmented.ok());
  EXPECT_EQ(augmented->best_path.path.length(), 0u);
  auto base = built.lake.GetTable(built.base_table);
  EXPECT_EQ(augmented->augmented.num_columns(), (*base)->num_columns());
}

TEST(AutoFeatTest, StarSchemaStillWorks) {
  auto built = MakeLake(/*star=*/true);
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeat engine(&built.lake, &*drg, FastConfig());
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ranked.empty());
  for (const auto& rp : result->ranked) {
    EXPECT_EQ(rp.path.length(), 1u);  // Star schema has no deeper paths.
  }
}

TEST(AutoFeatTest, DeterministicGivenSeed) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeat a(&built.lake, &*drg, FastConfig());
  AutoFeat b(&built.lake, &*drg, FastConfig());
  auto ra = a.DiscoverFeatures(built.base_table, built.label_column);
  auto rb = b.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->ranked.size(), rb->ranked.size());
  for (size_t i = 0; i < ra->ranked.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra->ranked[i].score, rb->ranked[i].score);
    EXPECT_TRUE(ra->ranked[i].path.steps == rb->ranked[i].path.steps);
  }
}

TEST(AutoFeatTest, MaxPathsCapRespected) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  AutoFeatConfig config = FastConfig();
  config.max_paths = 3;
  AutoFeat engine(&built.lake, &*drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->paths_explored, 3u);
}

TEST(AutoFeatTest, AblationConfigsRun) {
  auto built = MakeLake();
  auto drg = BuildDrgFromKfk(built.lake);
  for (bool use_rel : {true, false}) {
    for (bool use_red : {true, false}) {
      AutoFeatConfig config = FastConfig();
      config.use_relevance = use_rel;
      config.use_redundancy = use_red;
      AutoFeat engine(&built.lake, &*drg, config);
      auto result =
          engine.DiscoverFeatures(built.base_table, built.label_column);
      ASSERT_TRUE(result.ok()) << use_rel << use_red;
      EXPECT_FALSE(result->ranked.empty());
    }
  }
}

}  // namespace
}  // namespace autofeat
