#include "discovery/join_index_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "discovery/data_lake.h"
#include "graph/drg.h"
#include "obs/memory.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace autofeat {

namespace {

// FNV-1a over "table\0column": a stable per-entry stream id, so the
// representative draws do not depend on which caller builds an entry first.
uint64_t EntryStream(const std::string& table, const std::string& column) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001B3ULL;
    }
    h ^= 0;  // the '\0' separator
    h *= 0x100000001B3ULL;
  };
  mix(table);
  mix(column);
  return h;
}

}  // namespace

std::shared_ptr<JoinIndexCache::Entry> JoinIndexCache::EntryFor(
    const std::string& table, const std::string& column) {
  std::string key = table + '\0' + column;
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<Entry>& slot = entries_[std::move(key)];
  if (slot == nullptr) slot = std::make_shared<Entry>();
  return slot;
}

Result<const JoinKeyIndex*> JoinIndexCache::GetOrBuild(
    const std::string& table, const std::string& column) {
  obs::Increment(requests_);
  std::shared_ptr<Entry> entry = EntryFor(table, column);
  bool built_here = false;
  std::call_once(entry->once, [&] {
    obs::ScopedWorkerSpan span(tracer_, "join_index.build");
    built_here = true;
    obs::Increment(builds_);
    auto table_result = lake_->GetTable(table);
    if (!table_result.ok()) {
      entry->status = table_result.status();
      return;
    }
    auto column_result = (*table_result)->GetColumn(column);
    if (!column_result.ok()) {
      entry->status = column_result.status();
      return;
    }
    entry->index = BuildJoinKeyIndex(
        **column_result, DeriveSeed(seed_, EntryStream(table, column)));
    obs::Record(key_cardinality_, entry->index.num_distinct_keys());
    obs::AddBytesWithPeak(bytes_, bytes_peak_,
                          static_cast<int64_t>(entry->index.ApproxBytes()));
  });
  if (!built_here) obs::Increment(hits_);
  if (!entry->status.ok()) return entry->status;
  return &entry->index;
}

void JoinIndexCache::Prewarm(const DatasetRelationGraph& drg,
                             ThreadPool* pool) {
  // Every (to_node, to_column) of every oriented edge is a potential join
  // target; neighbour lists are symmetric, so this covers both directions.
  std::vector<std::pair<std::string, std::string>> targets;
  for (size_t node = 0; node < drg.num_nodes(); ++node) {
    for (size_t neighbor : drg.Neighbors(node)) {
      for (const JoinStep& edge : drg.EdgesBetween(node, neighbor)) {
        targets.emplace_back(drg.NodeName(edge.to_node), edge.to_column);
      }
    }
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  ParallelFor(pool, 0, targets.size(), /*grain=*/1, [&](size_t i) {
    // Failures surface (again) at join time; prewarm just drops them.
    GetOrBuild(targets[i].first, targets[i].second).status();
  });
}

size_t JoinIndexCache::num_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace autofeat
