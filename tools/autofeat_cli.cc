// autofeat_cli — run transitive feature discovery on a directory of CSVs.
//
// Usage:
//   autofeat_cli --lake DIR --base TABLE --label COLUMN
//                [--tau 0.65] [--kappa 15] [--top-k 4] [--max-hops 4]
//                [--model lightgbm|rf|extratrees|xgboost|knn|logreg]
//                [--threshold 0.55] [--threads 1] [--tune]
//                [--output augmented.csv]
//
// The joinability graph is discovered with the schema matcher (the
// data-lake setting); declared KFK metadata does not survive CSV files.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>

#include "core/autofeat.h"
#include "core/tuning.h"
#include "discovery/data_lake.h"
#include "graph/dot_export.h"
#include "graph/path_format.h"
#include "ml/trainer.h"
#include "obs/chrome_trace.h"
#include "obs/memory.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "relational/describe.h"
#include "table/csv.h"

namespace {

using namespace autofeat;

struct CliOptions {
  std::string lake_dir;
  std::string base_table;
  std::string label_column;
  std::string output;
  std::string dot_output;
  std::string metrics_output;
  std::string trace_output;
  std::string model = "lightgbm";
  std::string drg_matcher = "all_pairs";
  std::string scheduler = "morsel";
  std::string lake_format = "csv";
  /// Lake-wide cache budget in MiB (0 = unbounded).
  size_t memory_budget_mb = 0;
  /// < 0 = keep the LshOptions default.
  long lsh_rescue = -1;
  double tau = 0.65;
  size_t kappa = 15;
  size_t top_k = 4;
  size_t max_hops = 4;
  double threshold = 0.55;
  /// 0 = one worker per hardware thread, 1 = sequential.
  size_t threads = 1;
  bool tune = false;
  bool describe = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: autofeat_cli --lake DIR --base TABLE --label COLUMN\n"
      "                    [--tau F] [--kappa N] [--top-k N] [--max-hops N]\n"
      "                    [--model lightgbm|rf|extratrees|xgboost|knn|logreg]\n"
      "                    [--threshold F] [--threads N] [--tune]\n"
      "                    [--drg-matcher all_pairs|lsh] [--lsh-rescue N]\n"
      "                    [--scheduler forkjoin|morsel]\n"
      "                    [--lake-format csv|columnar] [--memory-budget-mb N]\n"
      "                    [--describe] [--output FILE.csv] [--dot FILE.dot]\n"
      "                    [--metrics-out FILE.json] [--trace-out FILE.json]\n"
      "  --lake-format csv|columnar\n"
      "                on-disk lake layout: csv loads *.csv files, columnar\n"
      "                loads *.afc files (the binary columnar format; see\n"
      "                lake_convert_cli to convert a directory)\n"
      "  --memory-budget-mb N\n"
      "                bound the lake-wide caches (join-key indexes, column\n"
      "                sketches) to N MiB via LRU eviction + rebuild-on-miss\n"
      "                (0 = unbounded). Results are byte-identical at any\n"
      "                budget; only wall time changes\n"
      "  --threads N   worker threads for discovery + evaluation\n"
      "                (0 = all hardware threads, 1 = sequential; results\n"
      "                are identical at any thread count)\n"
      "  --scheduler forkjoin|morsel\n"
      "                parallel-loop runtime: morsel (default) deals\n"
      "                fixed-size morsels across per-worker work-stealing\n"
      "                deques; forkjoin is the shared-cursor loop. Results\n"
      "                (and the metrics digest) are identical under both\n"
      "  --drg-matcher all_pairs|lsh\n"
      "                candidate generation for DRG discovery: all_pairs\n"
      "                scores every table pair (exhaustive, O(n^2));\n"
      "                lsh prefilters pairs with a MinHash-LSH index over\n"
      "                the column sketches (sub-quadratic on large lakes,\n"
      "                recall >= 95%% of all_pairs edges)\n"
      "  --lsh-rescue N\n"
      "                containment-rescue threshold of the lsh matcher:\n"
      "                columns with at most N distinct values index every\n"
      "                sketch value, catching small-FK-in-huge-PK joins\n"
      "                whose Jaccard similarity is too low for banding\n"
      "                (0 disables the rescue; default %zu). Raise it when\n"
      "                dimension tables are missed at the default\n",
      LshOptions{}.small_column_rescue);
  std::fprintf(
      stderr,
      "  --metrics-out FILE.json\n"
      "                write an observability report (counters, histograms,\n"
      "                memory gauges, phase spans) covering DRG discovery\n"
      "                and the engine; the report's deterministic digest is\n"
      "                identical at any --threads value\n"
      "  --trace-out FILE.json\n"
      "                write a Chrome trace-event file with per-thread\n"
      "                orchestration + worker spans and enqueue->execute\n"
      "                flow arrows; open at https://ui.perfetto.dev\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--lake") {
      const char* v = next();
      if (!v) return false;
      options->lake_dir = v;
    } else if (arg == "--base") {
      const char* v = next();
      if (!v) return false;
      options->base_table = v;
    } else if (arg == "--label") {
      const char* v = next();
      if (!v) return false;
      options->label_column = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (!v) return false;
      options->output = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return false;
      options->dot_output = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      options->metrics_output = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      options->trace_output = v;
    } else if (arg == "--model") {
      const char* v = next();
      if (!v) return false;
      options->model = v;
    } else if (arg == "--drg-matcher") {
      const char* v = next();
      if (!v) return false;
      options->drg_matcher = v;
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (!v) return false;
      options->scheduler = v;
    } else if (arg == "--lake-format") {
      const char* v = next();
      if (!v) return false;
      options->lake_format = v;
    } else if (arg == "--memory-budget-mb") {
      const char* v = next();
      if (!v) return false;
      options->memory_budget_mb = static_cast<size_t>(std::atol(v));
    } else if (arg == "--lsh-rescue") {
      const char* v = next();
      if (!v) return false;
      options->lsh_rescue = std::atol(v);
    } else if (arg == "--tau") {
      const char* v = next();
      if (!v) return false;
      options->tau = std::atof(v);
    } else if (arg == "--threshold") {
      const char* v = next();
      if (!v) return false;
      options->threshold = std::atof(v);
    } else if (arg == "--kappa") {
      const char* v = next();
      if (!v) return false;
      options->kappa = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--top-k") {
      const char* v = next();
      if (!v) return false;
      options->top_k = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-hops") {
      const char* v = next();
      if (!v) return false;
      options->max_hops = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      options->threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--tune") {
      options->tune = true;
    } else if (arg == "--describe") {
      options->describe = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->lake_dir.empty() && !options->base_table.empty() &&
         !options->label_column.empty();
}

Result<ml::ModelKind> ParseModel(const std::string& name) {
  if (name == "lightgbm") return ml::ModelKind::kLightGbm;
  if (name == "rf") return ml::ModelKind::kRandomForest;
  if (name == "extratrees") return ml::ModelKind::kExtraTrees;
  if (name == "xgboost") return ml::ModelKind::kXgBoost;
  if (name == "knn") return ml::ModelKind::kKnn;
  if (name == "logreg") return ml::ModelKind::kLogRegL1;
  return Status::InvalidArgument("unknown model: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  auto model = ParseModel(options.model);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 2;
  }

  // One shared registry/tracer covers DRG discovery and the engine, so the
  // report shows every phase of the run. Null when neither --metrics-out
  // nor --trace-out is given: every instrumentation point below
  // degenerates to an untaken branch.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;
  if (!options.metrics_output.empty() || !options.trace_output.empty()) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    tracer = std::make_unique<obs::Tracer>();
  }

  auto format = ParseLakeFormat(options.lake_format);
  format.status().Abort("parsing --lake-format");
  auto lake = [&] {
    obs::ScopedSpan span(tracer.get(), "load_lake");
    return DataLake::FromDirectory(options.lake_dir, *format);
  }();
  lake.status().Abort("loading lake");
  std::printf("loaded %zu tables from %s\n", lake->num_tables(),
              options.lake_dir.c_str());
  if (metrics != nullptr) {
    size_t lake_bytes = 0;
    for (const auto& table : lake->tables()) lake_bytes += table.ApproxBytes();
    obs::UpdateMax(obs::GetGauge(metrics.get(), "lake.tables"),
                   static_cast<int64_t>(lake->num_tables()));
    obs::UpdateMax(obs::GetGauge(metrics.get(), "lake.bytes"),
                   static_cast<int64_t>(lake_bytes));
  }
  if (!lake->HasTable(options.base_table)) {
    std::fprintf(stderr, "base table '%s' not found in lake\n",
                 options.base_table.c_str());
    return 2;
  }

  if (options.describe) {
    for (const auto& table : lake->tables()) {
      std::printf("\n%s", FormatTableDescription(table).c_str());
    }
    std::printf("\n");
  }

  const size_t budget_bytes = options.memory_budget_mb * (size_t{1} << 20);
  MatchOptions match;
  match.threshold = options.threshold;
  match.memory_budget_bytes = budget_bytes;
  if (options.drg_matcher == "lsh") {
    match.candidate_mode = CandidateMode::kLsh;
  } else if (options.drg_matcher != "all_pairs") {
    std::fprintf(stderr, "unknown --drg-matcher: %s (want all_pairs|lsh)\n",
                 options.drg_matcher.c_str());
    return 2;
  }
  if (options.lsh_rescue >= 0) {
    match.lsh.small_column_rescue = static_cast<size_t>(options.lsh_rescue);
  }
  auto scheduler_parse = ParseScheduler(options.scheduler);
  if (!scheduler_parse.ok()) {
    std::fprintf(stderr, "--scheduler: %s\n",
                 scheduler_parse.status().message().c_str());
    return 2;
  }
  SchedulerKind scheduler = *scheduler_parse;
  std::unique_ptr<ThreadPool> pool;
  if (ResolveNumThreads(options.threads) > 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
    if (metrics != nullptr) pool->set_metrics(metrics.get());
    if (tracer != nullptr) pool->set_tracer(tracer.get());
  }
  auto drg = [&] {
    obs::ScopedSpan span(tracer.get(), "drg_discovery");
    return BuildDrgByDiscovery(*lake, match, pool.get(), metrics.get());
  }();
  drg.status().Abort("discovering joinability");
  std::printf("discovered DRG: %zu nodes, %zu edges (threshold %.2f)\n",
              drg->num_nodes(), drg->num_edges(), options.threshold);
  {
    auto base_node = drg->NodeId(options.base_table);
    base_node.status().Abort();
    std::vector<size_t> isolated = drg->UnreachableFrom(*base_node);
    if (!isolated.empty()) {
      std::printf("warning: %zu table(s) unreachable from the base table:",
                  isolated.size());
      for (size_t node : isolated) {
        std::printf(" %s", drg->NodeName(node).c_str());
      }
      std::printf("\n");
    }
  }

  AutoFeatConfig config;
  config.tau = options.tau;
  config.kappa = options.kappa;
  config.top_k_paths = options.top_k;
  config.max_hops = options.max_hops;
  config.num_threads = options.threads;
  config.scheduler = scheduler;
  config.memory_budget_bytes = budget_bytes;
  if (metrics != nullptr) {
    config.metrics_enabled = true;
    config.metrics = metrics.get();
    config.tracer = tracer.get();
  }

  if (options.tune) {
    std::printf("tuning tau/kappa...\n");
    auto tuned = TuneHyperParameters(*lake, *drg, options.base_table,
                                     options.label_column, config);
    tuned.status().Abort("tuning");
    config = tuned->best_config;
    std::printf("tuned: tau=%.2f kappa=%zu (validation accuracy %.3f)\n",
                config.tau, config.kappa, tuned->best_trial.accuracy);
  }

  AutoFeat engine(&*lake, &*drg, config);
  auto result =
      engine.Augment(options.base_table, options.label_column, *model);
  result.status().Abort("augmenting");

  std::printf("\naccuracy (augmented, %s): %.3f\n", options.model.c_str(),
              result->accuracy);
  std::printf("paths explored: %zu | feature selection: %.3f s | total: "
              "%.3f s\n",
              result->discovery.paths_explored,
              result->discovery.feature_selection_seconds,
              result->total_seconds);
  std::printf("best path: %s\n",
              FormatJoinPath(*drg, result->best_path.path).c_str());
  std::printf("selected features:\n");
  for (const auto& fs : result->best_path.selected_features) {
    std::printf("  %-28s %.4f\n", fs.name.c_str(), fs.score);
  }

  if (!options.dot_output.empty()) {
    DotOptions dot_options;
    dot_options.highlight_node = options.base_table;
    dot_options.highlight_path = &result->best_path.path;
    std::ofstream dot_file(options.dot_output);
    dot_file << ExportDrgToDot(*drg, dot_options);
    std::printf("DRG written to %s (render: dot -Tsvg %s -o drg.svg)\n",
                options.dot_output.c_str(), options.dot_output.c_str());
  }

  if (!options.output.empty()) {
    WriteCsvFile(result->augmented, options.output)
        .Abort("writing augmented table");
    std::printf("augmented table written to %s (%zu rows x %zu columns)\n",
                options.output.c_str(), result->augmented.num_rows(),
                result->augmented.num_columns());
  }

  if (metrics != nullptr) {
    obs::RecordProcessPeakRss(metrics.get());
  }
  if (!options.metrics_output.empty()) {
    std::ofstream report_file(options.metrics_output);
    if (!report_file) {
      std::fprintf(stderr, "cannot write metrics report to %s\n",
                   options.metrics_output.c_str());
      return 2;
    }
    report_file << obs::JsonReport(*metrics, tracer.get());
    std::printf("metrics report written to %s (digest %s)\n",
                options.metrics_output.c_str(),
                obs::DeterministicDigest(*metrics, tracer.get()).c_str());
  }
  if (!options.trace_output.empty()) {
    std::ofstream trace_file(options.trace_output);
    if (!trace_file) {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   options.trace_output.c_str());
      return 2;
    }
    trace_file << obs::ChromeTraceJson(*tracer);
    std::printf("trace written to %s (open at https://ui.perfetto.dev)\n",
                options.trace_output.c_str());
  }
  return 0;
}
