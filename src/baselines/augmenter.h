// Common interface for all augmentation methods compared in §VII
// (AutoFeat, BASE, ARDA, MAB, JoinAll, JoinAll+F). An Augmenter takes the
// lake + DRG + base table and returns the augmented table it proposes; the
// harness then trains the evaluation models on that table.

#ifndef AUTOFEAT_BASELINES_AUGMENTER_H_
#define AUTOFEAT_BASELINES_AUGMENTER_H_

#include <string>

#include "discovery/data_lake.h"
#include "graph/drg.h"
#include "table/table.h"
#include "util/status.h"

namespace autofeat::baselines {

struct AugmenterResult {
  Table augmented;
  /// Time spent assessing feature fitness (the paper's "feature selection
  /// time" metric).
  double feature_selection_seconds = 0.0;
  /// Wall time of the whole augmentation (joins + selection + any internal
  /// model training).
  double total_seconds = 0.0;
  /// Number of datasets joined into the result (the bar labels of Fig. 4/6).
  size_t tables_joined = 0;
};

/// \brief A table-augmentation method.
class Augmenter {
 public:
  virtual ~Augmenter() = default;

  virtual Result<AugmenterResult> Augment(const DataLake& lake,
                                          const DatasetRelationGraph& drg,
                                          const std::string& base_table,
                                          const std::string& label_column) = 0;

  virtual std::string name() const = 0;
};

/// \brief BASE: the unaugmented base table (paper §VII-B).
class BaseMethod final : public Augmenter {
 public:
  Result<AugmenterResult> Augment(const DataLake& lake,
                                  const DatasetRelationGraph& drg,
                                  const std::string& base_table,
                                  const std::string& label_column) override;
  std::string name() const override { return "BASE"; }
};

}  // namespace autofeat::baselines

#endif  // AUTOFEAT_BASELINES_AUGMENTER_H_
