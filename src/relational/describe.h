// Per-column profiling of a table: the summary a data engineer checks
// before augmenting (types, null ratios, distinct counts, numeric ranges).

#ifndef AUTOFEAT_RELATIONAL_DESCRIBE_H_
#define AUTOFEAT_RELATIONAL_DESCRIBE_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace autofeat {

struct ColumnProfile {
  std::string name;
  DataType type = DataType::kDouble;
  size_t rows = 0;
  size_t nulls = 0;
  /// Distinct non-null values, counted up to `distinct_cap` (then capped).
  size_t distinct = 0;
  bool distinct_capped = false;
  /// Numeric summary (numeric columns only; 0 when not applicable).
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;

  double null_ratio() const {
    return rows == 0 ? 0.0
                     : static_cast<double>(nulls) / static_cast<double>(rows);
  }
  /// Heuristic: a unique (or near-unique) non-continuous column is
  /// key-like and a join-column candidate.
  bool LooksLikeKey() const {
    return type != DataType::kDouble && rows > 0 && nulls == 0 &&
           (distinct_capped || distinct == rows);
  }
};

/// Profiles one column (distinct counting capped at `distinct_cap`).
ColumnProfile ProfileColumn(const std::string& name, const Column& column,
                            size_t distinct_cap = 100000);

/// Profiles every column of a table.
std::vector<ColumnProfile> DescribeTable(const Table& table,
                                         size_t distinct_cap = 100000);

/// Renders the profile as an aligned text table (for CLI/debugging).
std::string FormatTableDescription(const Table& table);

}  // namespace autofeat

#endif  // AUTOFEAT_RELATIONAL_DESCRIBE_H_
