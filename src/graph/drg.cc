#include "graph/drg.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>
#include <unordered_set>

namespace autofeat {

size_t DatasetRelationGraph::AddNode(const std::string& dataset_name) {
  auto it = node_index_.find(dataset_name);
  if (it != node_index_.end()) return it->second;
  size_t id = node_names_.size();
  node_names_.push_back(dataset_name);
  node_index_[dataset_name] = id;
  incidence_.emplace_back();
  return id;
}

Result<size_t> DatasetRelationGraph::NodeId(
    const std::string& dataset_name) const {
  auto it = node_index_.find(dataset_name);
  if (it == node_index_.end()) {
    return Status::KeyError("unknown dataset: " + dataset_name);
  }
  return it->second;
}

Status DatasetRelationGraph::AddEdge(const std::string& from_dataset,
                                     const std::string& from_column,
                                     const std::string& to_dataset,
                                     const std::string& to_column,
                                     double weight) {
  if (from_dataset == to_dataset) {
    return Status::InvalidArgument("self-joins are not modelled in the DRG");
  }
  size_t a = AddNode(from_dataset);
  size_t b = AddNode(to_dataset);
  // Deduplicate: an undirected edge with the same endpoints+columns.
  for (size_t e : incidence_[a]) {
    EdgeRecord& rec = edges_[e];
    bool same_forward = rec.a == a && rec.b == b &&
                        rec.a_column == from_column &&
                        rec.b_column == to_column;
    bool same_backward = rec.a == b && rec.b == a &&
                         rec.a_column == to_column &&
                         rec.b_column == from_column;
    if (same_forward || same_backward) {
      rec.weight = std::max(rec.weight, weight);
      return Status::OK();
    }
  }
  size_t idx = edges_.size();
  edges_.push_back(EdgeRecord{a, b, from_column, to_column, weight});
  incidence_[a].push_back(idx);
  incidence_[b].push_back(idx);
  return Status::OK();
}

std::vector<size_t> DatasetRelationGraph::Neighbors(size_t node) const {
  std::vector<size_t> out;
  std::unordered_set<size_t> seen;
  for (size_t e : incidence_[node]) {
    const EdgeRecord& rec = edges_[e];
    size_t other = rec.a == node ? rec.b : rec.a;
    if (seen.insert(other).second) out.push_back(other);
  }
  return out;
}

std::vector<JoinStep> DatasetRelationGraph::EdgesBetween(size_t a,
                                                         size_t b) const {
  std::vector<JoinStep> out;
  for (size_t e : incidence_[a]) {
    const EdgeRecord& rec = edges_[e];
    if (rec.a == a && rec.b == b) {
      out.push_back(JoinStep{a, b, rec.a_column, rec.b_column, rec.weight});
    } else if (rec.a == b && rec.b == a) {
      out.push_back(JoinStep{a, b, rec.b_column, rec.a_column, rec.weight});
    }
  }
  return out;
}

std::vector<JoinStep> DatasetRelationGraph::BestEdgesBetween(size_t a,
                                                             size_t b) const {
  std::vector<JoinStep> all = EdgesBetween(a, b);
  if (all.empty()) return all;
  double best = 0.0;
  for (const auto& s : all) best = std::max(best, s.weight);
  std::vector<JoinStep> out;
  for (auto& s : all) {
    if (s.weight == best) out.push_back(std::move(s));
  }
  return out;
}

std::vector<JoinPath> DatasetRelationGraph::EnumeratePaths(
    size_t start, size_t max_hops, bool prune_to_best_edges) const {
  std::vector<JoinPath> out;
  if (max_hops == 0) return out;
  // Level-order (BFS) expansion of partial paths, matching AutoFeat's
  // traversal order (§IV-A).
  std::deque<JoinPath> frontier;
  frontier.push_back(JoinPath{});
  while (!frontier.empty()) {
    JoinPath path = std::move(frontier.front());
    frontier.pop_front();
    if (path.length() >= max_hops) continue;
    size_t tail = path.Terminal(start);
    for (size_t neighbor : Neighbors(tail)) {
      if (neighbor == start || path.ContainsNode(neighbor)) continue;
      std::vector<JoinStep> edges = prune_to_best_edges
                                        ? BestEdgesBetween(tail, neighbor)
                                        : EdgesBetween(tail, neighbor);
      for (auto& step : edges) {
        JoinPath extended = path.Extend(std::move(step));
        out.push_back(extended);
        frontier.push_back(std::move(extended));
      }
    }
  }
  return out;
}

std::vector<size_t> DatasetRelationGraph::ReachableFrom(size_t start) const {
  std::vector<bool> visited(num_nodes(), false);
  std::deque<size_t> queue{start};
  visited[start] = true;
  std::vector<size_t> out;
  while (!queue.empty()) {
    size_t node = queue.front();
    queue.pop_front();
    out.push_back(node);
    for (size_t n : Neighbors(node)) {
      if (!visited[n]) {
        visited[n] = true;
        queue.push_back(n);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> DatasetRelationGraph::UnreachableFrom(size_t start) const {
  std::vector<size_t> reachable = ReachableFrom(start);
  std::vector<size_t> out;
  size_t r = 0;
  for (size_t node = 0; node < num_nodes(); ++node) {
    if (r < reachable.size() && reachable[r] == node) {
      ++r;
    } else {
      out.push_back(node);
    }
  }
  return out;
}

double DatasetRelationGraph::JoinAllPathCountLog10(size_t start) const {
  // BFS levels; per Eq. 3 each node contributes k(v)! choices where k(v) is
  // its number of not-yet-visited neighbours.
  std::vector<bool> visited(num_nodes(), false);
  visited[start] = true;
  std::vector<size_t> level{start};
  double log10_paths = 0.0;
  while (!level.empty()) {
    // First pass: count unvisited neighbours per node at this level.
    std::vector<size_t> next;
    for (size_t v : level) {
      size_t k = 0;
      for (size_t n : Neighbors(v)) {
        if (!visited[n]) ++k;
      }
      for (size_t i = 2; i <= k; ++i) {
        log10_paths += std::log10(static_cast<double>(i));
      }
    }
    // Second pass: mark and collect the next level.
    for (size_t v : level) {
      for (size_t n : Neighbors(v)) {
        if (!visited[n]) {
          visited[n] = true;
          next.push_back(n);
        }
      }
    }
    level = std::move(next);
  }
  return log10_paths;
}

std::vector<DrgEdge> DatasetRelationGraph::AllEdges() const {
  std::vector<DrgEdge> out;
  out.reserve(edges_.size());
  for (const EdgeRecord& e : edges_) {
    out.push_back({e.a, e.b, e.a_column, e.b_column, e.weight});
  }
  return out;
}

std::string DatasetRelationGraph::OrderedFingerprint() const {
  std::ostringstream out;
  out.precision(17);
  for (const std::string& name : node_names_) out << name << ";";
  out << "\n";
  for (const EdgeRecord& e : edges_) {
    out << e.a << "." << e.a_column << ">" << e.b << "." << e.b_column << "="
        << e.weight << "\n";
  }
  return out.str();
}

}  // namespace autofeat
