#include "relational/join.h"

#include <unordered_map>
#include <vector>

namespace autofeat {

Result<Table> NormalizeJoinCardinality(const Table& right,
                                       const std::string& key_column,
                                       Rng* rng) {
  AF_ASSIGN_OR_RETURN(const Column* key, right.GetColumn(key_column));
  // Group row indices by key value, in first-seen order for determinism.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  std::vector<std::string> order;
  for (size_t i = 0; i < key->size(); ++i) {
    if (key->IsNull(i)) continue;  // Null keys never match in a join.
    std::string k = key->KeyAt(i);
    auto it = groups.find(k);
    if (it == groups.end()) {
      order.push_back(k);
      groups.emplace(std::move(k), std::vector<size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }
  std::vector<size_t> keep;
  keep.reserve(order.size());
  for (const auto& k : order) {
    const auto& rows = groups[k];
    keep.push_back(rows.size() == 1 ? rows[0]
                                    : rows[rng->UniformIndex(rows.size())]);
  }
  return right.TakeRows(keep);
}

Result<JoinResult> Join(const Table& left, const std::string& left_key,
                        const Table& right, const std::string& right_key,
                        Rng* rng, const JoinOptions& options) {
  AF_ASSIGN_OR_RETURN(const Column* lkey, left.GetColumn(left_key));

  const Table* probe_side = &right;
  Table normalized;
  if (options.normalize_cardinality) {
    AF_ASSIGN_OR_RETURN(normalized,
                        NormalizeJoinCardinality(right, right_key, rng));
    probe_side = &normalized;
  }
  AF_ASSIGN_OR_RETURN(const Column* rkey, probe_side->GetColumn(right_key));

  // Hash the right keys (one row per key when normalised, lists otherwise).
  std::unordered_map<std::string, std::vector<size_t>> right_index;
  right_index.reserve(rkey->size());
  for (size_t i = 0; i < rkey->size(); ++i) {
    if (rkey->IsNull(i)) continue;
    right_index[rkey->KeyAt(i)].push_back(i);
  }

  JoinResult result;
  result.stats.right_distinct_keys = right_index.size();

  // Probe: gather the output row indices per side directly — materialising
  // (left, right) pairs first would allocate and traverse the same data
  // twice just to re-split it into these two vectors.
  constexpr size_t kNoMatch = static_cast<size_t>(-1);
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;  // kNoMatch where unmatched
  left_rows.reserve(left.num_rows());
  right_rows.reserve(left.num_rows());
  for (size_t i = 0; i < left.num_rows(); ++i) {
    const std::vector<size_t>* matches = nullptr;
    if (!lkey->IsNull(i)) {
      auto it = right_index.find(lkey->KeyAt(i));
      if (it != right_index.end()) matches = &it->second;
    }
    if (matches != nullptr) {
      ++result.stats.matched_rows;
      for (size_t r : *matches) {
        left_rows.push_back(i);
        right_rows.push_back(r);
      }
    } else if (options.type == JoinType::kLeft) {
      left_rows.push_back(i);
      right_rows.push_back(kNoMatch);
    }
  }
  result.stats.total_rows = left_rows.size();

  // Materialise: left columns gathered by left index, right columns by
  // right index (null where unmatched).
  Table out(left.name());
  for (size_t c = 0; c < left.num_columns(); ++c) {
    AF_RETURN_NOT_OK(out.AddColumn(left.schema().field(c).name,
                                   left.column(c).Take(left_rows)));
  }
  for (size_t c = 0; c < probe_side->num_columns(); ++c) {
    const Column& src = probe_side->column(c);
    Column gathered(src.type());
    gathered.Reserve(right_rows.size());
    for (size_t r : right_rows) {
      if (r == kNoMatch) {
        gathered.AppendNull();
      } else {
        gathered.AppendFrom(src, r);
      }
    }
    std::string name = probe_side->schema().field(c).name;
    // Disambiguate collisions (e.g. the same table joined twice on a path).
    if (out.HasColumn(name)) {
      int suffix = 2;
      while (out.HasColumn(name + "#" + std::to_string(suffix))) ++suffix;
      name += "#" + std::to_string(suffix);
    }
    AF_RETURN_NOT_OK(out.AddColumn(name, std::move(gathered)));
  }
  result.table = std::move(out);
  return result;
}

double JoinCompleteness(const Table& joined,
                        const std::vector<std::string>& appended_columns) {
  if (appended_columns.empty() || joined.num_rows() == 0) return 1.0;
  size_t nulls = 0;
  size_t total = 0;
  for (const auto& name : appended_columns) {
    auto col = joined.GetColumn(name);
    if (!col.ok()) continue;
    nulls += (*col)->null_count();
    total += (*col)->size();
  }
  if (total == 0) return 1.0;
  return 1.0 - static_cast<double>(nulls) / static_cast<double>(total);
}

}  // namespace autofeat
