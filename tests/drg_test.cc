#include "graph/drg.h"

#include <cmath>

#include <gtest/gtest.h>

namespace autofeat {
namespace {

// Base -- A -- C, Base -- B; A-B also connected (triangle-ish).
DatasetRelationGraph MakeGraph() {
  DatasetRelationGraph g;
  g.AddEdge("base", "id", "a", "base_id", 1.0).Abort();
  g.AddEdge("base", "id", "b", "base_id", 1.0).Abort();
  g.AddEdge("a", "c_code", "c", "code", 1.0).Abort();
  g.AddEdge("a", "x", "b", "y", 0.7).Abort();
  return g;
}

TEST(DrgTest, AddNodeIsIdempotent) {
  DatasetRelationGraph g;
  size_t a = g.AddNode("t");
  size_t b = g.AddNode("t");
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.NodeName(a), "t");
}

TEST(DrgTest, NodeIdLookup) {
  auto g = MakeGraph();
  EXPECT_TRUE(g.NodeId("base").ok());
  EXPECT_EQ(g.NodeId("missing").status().code(), StatusCode::kKeyError);
}

TEST(DrgTest, SelfLoopRejected) {
  DatasetRelationGraph g;
  EXPECT_EQ(g.AddEdge("t", "a", "t", "b", 1.0).code(),
            StatusCode::kInvalidArgument);
}

TEST(DrgTest, DuplicateEdgeKeepsMaxWeight) {
  DatasetRelationGraph g;
  g.AddEdge("x", "c1", "y", "c2", 0.5).Abort();
  g.AddEdge("x", "c1", "y", "c2", 0.9).Abort();
  g.AddEdge("y", "c2", "x", "c1", 0.2).Abort();  // Same edge, reversed.
  EXPECT_EQ(g.num_edges(), 1u);
  auto edges = g.EdgesBetween(*g.NodeId("x"), *g.NodeId("y"));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].weight, 0.9);
}

TEST(DrgTest, MultigraphKeepsDistinctColumnPairs) {
  DatasetRelationGraph g;
  g.AddEdge("x", "c1", "y", "d1", 0.6).Abort();
  g.AddEdge("x", "c2", "y", "d2", 0.8).Abort();
  EXPECT_EQ(g.num_edges(), 2u);
  auto edges = g.EdgesBetween(*g.NodeId("x"), *g.NodeId("y"));
  EXPECT_EQ(edges.size(), 2u);
}

TEST(DrgTest, NeighborsUniqueAcrossMultiEdges) {
  DatasetRelationGraph g;
  g.AddEdge("x", "c1", "y", "d1", 0.6).Abort();
  g.AddEdge("x", "c2", "y", "d2", 0.8).Abort();
  auto n = g.Neighbors(*g.NodeId("x"));
  EXPECT_EQ(n.size(), 1u);
}

TEST(DrgTest, EdgesAreOrientedFromCaller) {
  auto g = MakeGraph();
  size_t a = *g.NodeId("a");
  size_t base = *g.NodeId("base");
  auto from_base = g.EdgesBetween(base, a);
  ASSERT_EQ(from_base.size(), 1u);
  EXPECT_EQ(from_base[0].from_column, "id");
  EXPECT_EQ(from_base[0].to_column, "base_id");
  auto from_a = g.EdgesBetween(a, base);
  ASSERT_EQ(from_a.size(), 1u);
  EXPECT_EQ(from_a[0].from_column, "base_id");
  EXPECT_EQ(from_a[0].to_column, "id");
}

TEST(DrgTest, BestEdgesKeepsTopWeightTies) {
  DatasetRelationGraph g;
  g.AddEdge("x", "a", "y", "a2", 0.9).Abort();
  g.AddEdge("x", "b", "y", "b2", 0.9).Abort();
  g.AddEdge("x", "c", "y", "c2", 0.5).Abort();
  auto best = g.BestEdgesBetween(*g.NodeId("x"), *g.NodeId("y"));
  EXPECT_EQ(best.size(), 2u);
  for (const auto& e : best) EXPECT_DOUBLE_EQ(e.weight, 0.9);
}

TEST(DrgTest, EnumeratePathsBfsOrderAndAcyclicity) {
  auto g = MakeGraph();
  size_t base = *g.NodeId("base");
  auto paths = g.EnumeratePaths(base, 3);
  // Length-1: base->a, base->b. Length-2: base->a->c, base->a->b,
  // base->b->a. Length-3: base->b->a->c.
  ASSERT_EQ(paths.size(), 6u);
  EXPECT_EQ(paths[0].length(), 1u);
  EXPECT_EQ(paths[1].length(), 1u);
  EXPECT_EQ(paths[5].length(), 3u);
  for (const auto& p : paths) {
    // No node revisits.
    std::vector<size_t> nodes{base};
    for (const auto& s : p.steps) nodes.push_back(s.to_node);
    std::sort(nodes.begin(), nodes.end());
    EXPECT_TRUE(std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end());
  }
}

TEST(DrgTest, EnumeratePathsRespectsMaxHops) {
  auto g = MakeGraph();
  size_t base = *g.NodeId("base");
  auto paths = g.EnumeratePaths(base, 1);
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_TRUE(g.EnumeratePaths(base, 0).empty());
}

TEST(DrgTest, EnumeratePathsMultiEdgeYieldsDistinctPaths) {
  DatasetRelationGraph g;
  g.AddEdge("s", "c1", "t", "d1", 0.9).Abort();
  g.AddEdge("s", "c2", "t", "d2", 0.4).Abort();
  auto all = g.EnumeratePaths(*g.NodeId("s"), 2);
  EXPECT_EQ(all.size(), 2u);
  auto pruned = g.EnumeratePaths(*g.NodeId("s"), 2,
                                 /*prune_to_best_edges=*/true);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_DOUBLE_EQ(pruned[0].steps[0].weight, 0.9);
}

TEST(JoinPathTest, TerminalAndContains) {
  JoinPath p;
  EXPECT_EQ(p.Terminal(5), 5u);
  p = p.Extend(JoinStep{5, 7, "a", "b", 1.0});
  EXPECT_EQ(p.Terminal(5), 7u);
  EXPECT_TRUE(p.ContainsNode(5));
  EXPECT_TRUE(p.ContainsNode(7));
  EXPECT_FALSE(p.ContainsNode(9));
}

TEST(JoinAllCountTest, StarSchemaFactorial) {
  // A star with 15 satellites -> 15! paths (Eq. 3), log10(15!) ~ 12.1.
  DatasetRelationGraph g;
  for (int i = 0; i < 15; ++i) {
    g.AddEdge("base", "id", "t" + std::to_string(i), "id", 1.0).Abort();
  }
  double log_paths = g.JoinAllPathCountLog10(*g.NodeId("base"));
  EXPECT_NEAR(log_paths, std::log10(1307674368000.0), 1e-9);
}

TEST(JoinAllCountTest, ChainHasSinglePath) {
  DatasetRelationGraph g;
  g.AddEdge("a", "x", "b", "x", 1.0).Abort();
  g.AddEdge("b", "y", "c", "y", 1.0).Abort();
  EXPECT_DOUBLE_EQ(g.JoinAllPathCountLog10(*g.NodeId("a")), 0.0);  // 1 path.
}

TEST(JoinAllCountTest, TwoLevels) {
  // base - {a, b}; a - {c, d}: 2! * 2! * 1 = 4 paths.
  DatasetRelationGraph g;
  g.AddEdge("base", "k", "a", "k", 1.0).Abort();
  g.AddEdge("base", "k2", "b", "k2", 1.0).Abort();
  g.AddEdge("a", "m", "c", "m", 1.0).Abort();
  g.AddEdge("a", "n", "d", "n", 1.0).Abort();
  EXPECT_NEAR(g.JoinAllPathCountLog10(*g.NodeId("base")), std::log10(4.0),
              1e-12);
}


TEST(ReachabilityTest, ReachableFromFindsComponent) {
  auto g = MakeGraph();  // base-a-b-c all connected.
  size_t base = *g.NodeId("base");
  EXPECT_EQ(g.ReachableFrom(base).size(), 4u);
  EXPECT_TRUE(g.UnreachableFrom(base).empty());
}

TEST(ReachabilityTest, IsolatedNodesReported) {
  auto g = MakeGraph();
  size_t island = g.AddNode("island");
  size_t island2 = g.AddNode("island2");
  g.AddEdge("island", "x", "island2", "y", 0.9).Abort();
  size_t base = *g.NodeId("base");
  auto unreachable = g.UnreachableFrom(base);
  ASSERT_EQ(unreachable.size(), 2u);
  EXPECT_EQ(unreachable[0], island);
  EXPECT_EQ(unreachable[1], island2);
  // From the island, the main component is unreachable.
  EXPECT_EQ(g.ReachableFrom(island).size(), 2u);
  EXPECT_EQ(g.UnreachableFrom(island).size(), 4u);
}

TEST(ReachabilityTest, SingletonGraph) {
  DatasetRelationGraph g;
  size_t only = g.AddNode("only");
  EXPECT_EQ(g.ReachableFrom(only), (std::vector<size_t>{only}));
  EXPECT_TRUE(g.UnreachableFrom(only).empty());
}

}  // namespace
}  // namespace autofeat
