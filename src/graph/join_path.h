// Join paths over the Dataset Relation Graph (Def. IV.2 / IV.4).

#ifndef AUTOFEAT_GRAPH_JOIN_PATH_H_
#define AUTOFEAT_GRAPH_JOIN_PATH_H_

#include <cstddef>
#include <string>
#include <vector>

namespace autofeat {

/// \brief One hop of a join path: join `from_node.from_column` with
/// `to_node.to_column` (an edge instance of the multigraph).
struct JoinStep {
  size_t from_node = 0;
  size_t to_node = 0;
  std::string from_column;
  std::string to_column;
  /// 1.0 for KFK edges; dataset-discovery similarity score otherwise.
  double weight = 1.0;

  bool operator==(const JoinStep& other) const {
    return from_node == other.from_node && to_node == other.to_node &&
           from_column == other.from_column && to_column == other.to_column;
  }
};

/// \brief A directed, acyclic (node-distinct) sequence of join steps
/// starting at the base table.
struct JoinPath {
  std::vector<JoinStep> steps;

  size_t length() const { return steps.size(); }
  bool empty() const { return steps.empty(); }

  /// True if `node` appears anywhere on the path (including as source).
  bool ContainsNode(size_t node) const {
    for (const auto& s : steps) {
      if (s.from_node == node || s.to_node == node) return true;
    }
    return false;
  }

  /// The terminal node of the path (callers must pass the start node in
  /// case the path is empty).
  size_t Terminal(size_t start) const {
    return steps.empty() ? start : steps.back().to_node;
  }

  /// Extends the path with one more step.
  JoinPath Extend(JoinStep step) const {
    JoinPath out = *this;
    out.steps.push_back(std::move(step));
    return out;
  }
};

}  // namespace autofeat

#endif  // AUTOFEAT_GRAPH_JOIN_PATH_H_
