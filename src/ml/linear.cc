#include "ml/linear.h"

#include <algorithm>
#include <cmath>

namespace autofeat::ml {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double SoftThreshold(double w, double t) {
  if (w > t) return w - t;
  if (w < -t) return w + t;
  return 0.0;
}
}  // namespace

Status LogisticRegressionL1::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  size_t p = train.num_features();
  if (n == 0) return Status::InvalidArgument("empty training set");

  means_.assign(p, 0.0);
  stds_.assign(p, 1.0);
  for (size_t f = 0; f < p; ++f) {
    const auto& col = train.column(f);
    double sum = 0;
    for (double v : col) sum += v;
    means_[f] = sum / static_cast<double>(n);
    double var = 0;
    for (double v : col) var += (v - means_[f]) * (v - means_[f]);
    var /= static_cast<double>(n);
    stds_[f] = var > 0 ? std::sqrt(var) : 1.0;
  }

  // Normalised design matrix, row-major for the inner loop.
  std::vector<std::vector<double>> x(n, std::vector<double>(p));
  for (size_t r = 0; r < n; ++r) {
    for (size_t f = 0; f < p; ++f) {
      x[r][f] = (train.at(r, f) - means_[f]) / stds_[f];
    }
  }

  weights_.assign(p, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(p);
  double dn = static_cast<double>(n);

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (size_t r = 0; r < n; ++r) {
      double z = bias_;
      for (size_t f = 0; f < p; ++f) z += weights_[f] * x[r][f];
      double err = Sigmoid(z) - static_cast<double>(train.label(r));
      for (size_t f = 0; f < p; ++f) grad[f] += err * x[r][f];
      grad_bias += err;
    }

    double max_delta = 0.0;
    for (size_t f = 0; f < p; ++f) {
      double updated = weights_[f] - options_.learning_rate * grad[f] / dn;
      updated =
          SoftThreshold(updated, options_.learning_rate * options_.l1);
      max_delta = std::max(max_delta, std::abs(updated - weights_[f]));
      weights_[f] = updated;
    }
    double new_bias = bias_ - options_.learning_rate * grad_bias / dn;
    max_delta = std::max(max_delta, std::abs(new_bias - bias_));
    bias_ = new_bias;

    if (max_delta < options_.tolerance) break;
  }
  return Status::OK();
}

double LogisticRegressionL1::PredictProba(const Dataset& data,
                                          size_t row) const {
  double z = bias_;
  for (size_t f = 0; f < weights_.size() && f < data.num_features(); ++f) {
    z += weights_[f] * (data.at(row, f) - means_[f]) / stds_[f];
  }
  return Sigmoid(z);
}

size_t LogisticRegressionL1::num_zero_weights() const {
  size_t zeros = 0;
  for (double w : weights_) zeros += (w == 0.0);
  return zeros;
}

}  // namespace autofeat::ml
