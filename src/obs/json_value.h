// Minimal JSON document parser.
//
// Just enough JSON to read back the repo's own machine-readable outputs —
// BENCH_*.json timing records (tools/bench_diff) and Chrome trace exports
// (test validation) — with zero third-party dependencies. Numbers are
// held as double (BENCH values are seconds and metric counts, both well
// inside the 2^53 exact-integer range); object fields keep insertion
// order; \uXXXX escapes decode to UTF-8.

#ifndef AUTOFEAT_OBS_JSON_VALUE_H_
#define AUTOFEAT_OBS_JSON_VALUE_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace autofeat::obs {

/// \brief One parsed JSON value; a tagged union in struct clothing.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;    // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// First object member with this key, or nullptr (also when not an
  /// object).
  const JsonValue* Find(const std::string& key) const;
};

/// \brief Parses a complete JSON document (trailing garbage is an error).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_JSON_VALUE_H_
