// Tests of the non-default join configurations (inner join, unnormalised
// cardinality) used by the join-design ablation.

#include <gtest/gtest.h>

#include "relational/join.h"

namespace autofeat {
namespace {

Table MakeLeft() {
  Table t("left");
  t.AddColumn("id", Column::Int64s({1, 2, 3, 4})).Abort();
  t.AddColumn("label", Column::Int64s({0, 0, 1, 1})).Abort();
  return t;
}

// Right table: key 1 appears twice, key 3 once, keys 2/4 absent.
Table MakeRight() {
  Table t("right");
  t.AddColumn("rid", Column::Int64s({1, 1, 3})).Abort();
  t.AddColumn("v", Column::Doubles({10, 11, 30})).Abort();
  return t;
}

TEST(InnerJoinTest, DropsUnmatchedRows) {
  Rng rng(1);
  JoinOptions options;
  options.type = JoinType::kInner;
  auto r = Join(MakeLeft(), "id", MakeRight(), "rid", &rng, options);
  ASSERT_TRUE(r.ok());
  // Only ids 1 and 3 survive.
  EXPECT_EQ(r->table.num_rows(), 2u);
  EXPECT_EQ(r->stats.matched_rows, 2u);
  EXPECT_EQ((*r->table.GetColumn("v"))->null_count(), 0u);
}

TEST(InnerJoinTest, SkewsClassDistribution) {
  Rng rng(1);
  JoinOptions options;
  options.type = JoinType::kInner;
  auto r = Join(MakeLeft(), "id", MakeRight(), "rid", &rng, options);
  ASSERT_TRUE(r.ok());
  // Original balance 2:2; the inner join keeps one of each here, but
  // removing rows is exactly the distribution hazard of §IV-B — verify
  // the surviving rows are the matched subset, not the original.
  auto label = *r->table.GetColumn("label");
  EXPECT_EQ(label->size(), 2u);
}

TEST(UnnormalizedJoinTest, DuplicatesOneToManyMatches) {
  Rng rng(1);
  JoinOptions options;
  options.normalize_cardinality = false;
  auto r = Join(MakeLeft(), "id", MakeRight(), "rid", &rng, options);
  ASSERT_TRUE(r.ok());
  // id=1 matches two right rows -> duplicated; ids 2/4 null; total 5 rows.
  EXPECT_EQ(r->table.num_rows(), 5u);
  auto ids = *r->table.GetColumn("id");
  EXPECT_EQ(ids->GetInt64(0), 1);
  EXPECT_EQ(ids->GetInt64(1), 1);
  // Both duplicate rows carry distinct right values.
  auto v = *r->table.GetColumn("v");
  EXPECT_NE(v->GetDouble(0), v->GetDouble(1));
}

TEST(UnnormalizedJoinTest, InnerUnnormalizedIsPureMultiplicity) {
  Rng rng(1);
  JoinOptions options;
  options.type = JoinType::kInner;
  options.normalize_cardinality = false;
  auto r = Join(MakeLeft(), "id", MakeRight(), "rid", &rng, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 3u);  // 2 for id=1, 1 for id=3.
}

TEST(JoinOptionsTest, DefaultMatchesLeftJoin) {
  Rng rng_a(9), rng_b(9);
  auto via_default = Join(MakeLeft(), "id", MakeRight(), "rid", &rng_a);
  auto via_wrapper = LeftJoin(MakeLeft(), "id", MakeRight(), "rid", &rng_b);
  ASSERT_TRUE(via_default.ok());
  ASSERT_TRUE(via_wrapper.ok());
  EXPECT_TRUE(via_default->table.Equals(via_wrapper->table));
}

TEST(UnnormalizedJoinTest, LabelDistributionSkew) {
  // The §IV-B argument, concretely: a right table whose duplicates align
  // with one class inflates that class after an unnormalised join.
  Table left("l");
  left.AddColumn("id", Column::Int64s({1, 2, 3, 4})).Abort();
  left.AddColumn("label", Column::Int64s({1, 0, 0, 0})).Abort();
  Table right("r");
  // Key 1 (the positive row) appears 5 times.
  right.AddColumn("rid", Column::Int64s({1, 1, 1, 1, 1, 2, 3, 4})).Abort();
  right.AddColumn("v", Column::Doubles({1, 2, 3, 4, 5, 6, 7, 8})).Abort();

  Rng rng(2);
  JoinOptions skewed;
  skewed.normalize_cardinality = false;
  auto r = Join(left, "id", right, "rid", &rng, skewed);
  ASSERT_TRUE(r.ok());
  auto label = *r->table.GetColumn("label");
  size_t positives = 0;
  for (size_t i = 0; i < label->size(); ++i) {
    positives += static_cast<size_t>(label->GetInt64(i));
  }
  // 5 of 8 rows are now positive vs 1 of 4 originally.
  EXPECT_EQ(label->size(), 8u);
  EXPECT_EQ(positives, 5u);

  // The normalised join preserves the original distribution exactly.
  Rng rng2(2);
  auto normalized = LeftJoin(left, "id", right, "rid", &rng2);
  ASSERT_TRUE(normalized.ok());
  auto norm_label = *normalized->table.GetColumn("label");
  size_t norm_positives = 0;
  for (size_t i = 0; i < norm_label->size(); ++i) {
    norm_positives += static_cast<size_t>(norm_label->GetInt64(i));
  }
  EXPECT_EQ(norm_label->size(), 4u);
  EXPECT_EQ(norm_positives, 1u);
}

}  // namespace
}  // namespace autofeat
