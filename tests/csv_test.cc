#include "table/csv.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  auto t = ReadCsvString("id,score,name\n1,0.5,ann\n2,1.25,bob\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ((*t->GetColumn("id"))->type(), DataType::kInt64);
  EXPECT_EQ((*t->GetColumn("score"))->type(), DataType::kDouble);
  EXPECT_EQ((*t->GetColumn("name"))->type(), DataType::kString);
}

TEST(CsvTest, IntegerColumnWithDecimalBecomesDouble) {
  auto t = ReadCsvString("x\n1\n2.5\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).type(), DataType::kDouble);
}

TEST(CsvTest, MixedColumnBecomesString) {
  auto t = ReadCsvString("x\n1\nabc\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).type(), DataType::kString);
}

TEST(CsvTest, EmptyAndNaTokensAreNull) {
  auto t = ReadCsvString("a,b\n1,\n,x\nNA,y\n", "t");
  ASSERT_TRUE(t.ok());
  const Column& a = *(*t->GetColumn("a"));
  EXPECT_FALSE(a.IsNull(0));
  EXPECT_TRUE(a.IsNull(1));
  EXPECT_TRUE(a.IsNull(2));
  const Column& b = *(*t->GetColumn("b"));
  EXPECT_TRUE(b.IsNull(0));
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  auto t = ReadCsvString("a,b\n\"x,y\",2\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t->GetColumn("a"))->GetString(0), "x,y");
  EXPECT_EQ((*t->GetColumn("b"))->GetInt64(0), 2);
}

TEST(CsvTest, EscapedQuotes) {
  auto t = ReadCsvString("a\n\"he said \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).GetString(0), "he said \"hi\"");
}

TEST(CsvTest, RaggedRowIsError) {
  auto t = ReadCsvString("a,b\n1\n", "t");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ReadCsvString("", "t").ok());
}

TEST(CsvTest, NegativeAndScientificNumbers) {
  auto t = ReadCsvString("x,y\n-5,1e-3\n7,-2.5E2\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t->GetColumn("x"))->GetInt64(0), -5);
  EXPECT_DOUBLE_EQ((*t->GetColumn("y"))->GetDouble(1), -250.0);
}

TEST(CsvTest, RoundTripPreservesData) {
  Table t("roundtrip");
  t.AddColumn("id", Column::Int64s({1, 2, 3}, {1, 0, 1})).Abort();
  t.AddColumn("v", Column::Doubles({0.125, -2.0, 3.75})).Abort();
  t.AddColumn("s", Column::Strings({"plain", "with,comma", "with\"quote"}))
      .Abort();
  std::string csv = WriteCsvString(t);
  auto back = ReadCsvString(csv, "roundtrip");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(t)) << csv;
}

TEST(CsvTest, FileRoundTrip) {
  Table t("disk");
  t.AddColumn("k", Column::Int64s({10, 20})).Abort();
  t.AddColumn("v", Column::Doubles({1.5, 2.5})).Abort();
  std::string path = ::testing::TempDir() + "/autofeat_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "autofeat_csv_test");
  back->set_name("disk");
  EXPECT_TRUE(back->Equals(t));
}

TEST(CsvTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/nope.csv").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace autofeat
