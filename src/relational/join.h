// Left join with cardinality normalisation (paper §IV-B).
//
// AutoFeat only performs *left* joins so that the base table's row count and
// label distribution are preserved. One-to-many and many-to-many joins are
// first normalised by grouping the right table on the join column and keeping
// one (seeded-)randomly chosen row per key, as in ARDA.

#ifndef AUTOFEAT_RELATIONAL_JOIN_H_
#define AUTOFEAT_RELATIONAL_JOIN_H_

#include <string>

#include "table/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace autofeat {

struct JoinStats {
  /// Number of left rows that found a match on the right.
  size_t matched_rows = 0;
  /// Left row count (== output row count for a left join).
  size_t total_rows = 0;
  /// Distinct keys on the (normalised) right side.
  size_t right_distinct_keys = 0;

  double match_ratio() const {
    return total_rows == 0
               ? 0.0
               : static_cast<double>(matched_rows) /
                     static_cast<double>(total_rows);
  }
};

struct JoinResult {
  Table table;
  JoinStats stats;
};

/// Normalises the right side of a join to at most one row per key value:
/// groups by `key_column` and picks a uniformly random row per group.
/// Rows with a null key are dropped (they can never match).
Result<Table> NormalizeJoinCardinality(const Table& right,
                                       const std::string& key_column,
                                       Rng* rng);

/// AutoFeat exclusively uses left joins (§IV-B); the inner variant exists
/// to demonstrate *why* (see bench/ablation_join_design): it drops
/// unmatched base rows and skews the class distribution.
enum class JoinType {
  kLeft,
  kInner,
};

struct JoinOptions {
  JoinType type = JoinType::kLeft;
  /// Group the right side by key and keep one random row per key (§IV-B).
  /// Disabling it lets 1:N joins duplicate base rows — the other failure
  /// mode the paper's design avoids.
  bool normalize_cardinality = true;
};

/// Joins `right` onto `left` on left_key == right_key.
///
/// With the default options (left join, cardinality-normalised) the output
/// has exactly left.num_rows() rows in left order. All right columns are
/// appended; unmatched left rows get nulls (left join) or are dropped
/// (inner join). Right column names that collide with existing left column
/// names are disambiguated with a numeric suffix.
///
/// Fails with InvalidArgument if either key column is missing; succeeds with
/// stats.matched_rows == 0 when no key matches (callers treat that as the
/// "join not possible" pruning signal of §IV-C).
Result<JoinResult> Join(const Table& left, const std::string& left_key,
                        const Table& right, const std::string& right_key,
                        Rng* rng, const JoinOptions& options = {});

/// The paper's join: left, cardinality-normalised.
inline Result<JoinResult> LeftJoin(const Table& left,
                                   const std::string& left_key,
                                   const Table& right,
                                   const std::string& right_key, Rng* rng) {
  return Join(left, left_key, right, right_key, rng, JoinOptions{});
}

/// Reference implementation of Join that compares keys as KeyAt strings and
/// hashes the right side per call — the pre-interning execution path. Kept
/// for differential testing against the dictionary-encoded Join and as the
/// baseline side of bench/join_path_eval; not for production use.
Result<JoinResult> JoinStringKeyed(const Table& left,
                                   const std::string& left_key,
                                   const Table& right,
                                   const std::string& right_key, Rng* rng,
                                   const JoinOptions& options = {});

/// Completeness (non-null fraction) of the columns that `join` appended,
/// i.e. the data-quality score compared against the threshold tau (§IV-C).
/// `appended_columns` are the names of the newly added right-side columns;
/// naming a column `joined` does not have is a KeyError, not a silent skip.
Result<double> JoinCompleteness(
    const Table& joined, const std::vector<std::string>& appended_columns);

}  // namespace autofeat

#endif  // AUTOFEAT_RELATIONAL_JOIN_H_
