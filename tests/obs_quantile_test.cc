// QuantileHistogram (obs/quantile.h): bucket layout, quantile queries,
// mergeability and the bounded-relative-error contract.

#include "obs/quantile.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace autofeat::obs {
namespace {

TEST(QuantileHistogramTest, EmptyHistogramReportsZero) {
  QuantileHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(QuantileHistogramTest, SingleSampleDominatesEveryQuantile) {
  QuantileHistogram h;
  h.Record(42);  // below kSubBucketCount: exact region
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.ValueAtQuantile(q), 42u) << "q=" << q;
  }
}

TEST(QuantileHistogramTest, ExactRegionIsExact) {
  // Values below kSubBucketCount each get their own bucket.
  QuantileHistogram h;
  for (uint64_t v = 0; v < QuantileHistogram::kSubBucketCount; ++v) {
    EXPECT_EQ(QuantileHistogram::BucketOf(v), v);
    EXPECT_EQ(QuantileHistogram::BucketUpperBound(v), v);
  }
}

TEST(QuantileHistogramTest, BucketOrderIsTotalAndUpperBoundsRoundTrip) {
  // BucketOf is monotone in v and BucketUpperBound(b) is the largest value
  // mapping back to bucket b.
  uint64_t probes[] = {0,    1,    63,        64,        65,   100,
                       127,  128,  1000,      4095,      4096, 1 << 20,
                       1u << 31, uint64_t{1} << 40, UINT64_MAX - 1, UINT64_MAX};
  size_t prev = 0;
  for (uint64_t v : probes) {
    size_t b = QuantileHistogram::BucketOf(v);
    EXPECT_GE(b, prev);
    prev = b;
    EXPECT_LT(b, QuantileHistogram::kNumBuckets);
    uint64_t upper = QuantileHistogram::BucketUpperBound(b);
    EXPECT_GE(upper, v);
    EXPECT_EQ(QuantileHistogram::BucketOf(upper), b);
  }
}

TEST(QuantileHistogramTest, OverflowBucketHoldsHugeValues) {
  // The top of the uint64 range must land in a valid bucket and report
  // back without overflowing or wrapping.
  QuantileHistogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.ValueAtQuantile(1.0), UINT64_MAX);
  EXPECT_EQ(QuantileHistogram::BucketOf(UINT64_MAX),
            QuantileHistogram::kNumBuckets - 1);
}

TEST(QuantileHistogramTest, QuantilesNeverUnderReport) {
  // The contract: true <= estimate <= true * (1 + 1/kSubBucketHalf).
  Rng rng(7);
  std::vector<uint64_t> samples;
  QuantileHistogram h;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = static_cast<uint64_t>(rng.UniformInt(0, 1 << 22));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const double max_ratio =
      1.0 + 1.0 / static_cast<double>(QuantileHistogram::kSubBucketHalf);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    size_t rank = static_cast<size_t>(
        std::min<double>(std::ceil(q * static_cast<double>(samples.size())),
                         static_cast<double>(samples.size())));
    uint64_t truth = samples[rank == 0 ? 0 : rank - 1];
    uint64_t estimate = h.ValueAtQuantile(q);
    EXPECT_GE(estimate, truth) << "q=" << q;
    EXPECT_LE(static_cast<double>(estimate),
              static_cast<double>(truth) * max_ratio + 1.0)
        << "q=" << q;
  }
}

TEST(QuantileHistogramTest, MergeIsAssociativeAndLossless) {
  // (a + b) + c == a + (b + c) == one histogram over all samples: merge is
  // bucket-wise addition, so any grouping gives identical buckets.
  Rng rng(11);
  QuantileHistogram parts[3];
  QuantileHistogram all;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 300; ++i) {
      uint64_t v = static_cast<uint64_t>(rng.UniformInt(0, 1 << 18));
      parts[p].Record(v);
      all.Record(v);
    }
  }
  QuantileHistogram left;  // (a + b) + c
  left.Merge(parts[0]);
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  QuantileHistogram bc;  // a + (b + c)
  bc.Merge(parts[1]);
  bc.Merge(parts[2]);
  QuantileHistogram right;
  right.Merge(parts[0]);
  right.Merge(bc);
  for (const QuantileHistogram* h : {&left, &right}) {
    EXPECT_EQ(h->count(), all.count());
    EXPECT_EQ(h->sum(), all.sum());
    EXPECT_EQ(h->min(), all.min());
    EXPECT_EQ(h->max(), all.max());
    for (size_t b = 0; b < QuantileHistogram::kNumBuckets; ++b) {
      ASSERT_EQ(h->bucket(b), all.bucket(b)) << "bucket " << b;
    }
    for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(h->ValueAtQuantile(q), all.ValueAtQuantile(q)) << "q=" << q;
    }
  }
}

TEST(QuantileHistogramTest, QuantileIsClampedToValidRange) {
  QuantileHistogram h;
  h.Record(5);
  h.Record(500);
  EXPECT_EQ(h.ValueAtQuantile(-1.0), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), h.ValueAtQuantile(1.0));
}

}  // namespace
}  // namespace autofeat::obs
