// Quickstart: build a small synthetic data lake, run AutoFeat, and compare
// the augmented table's accuracy against the bare base table.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "baselines/augmenter.h"
#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "discovery/data_lake.h"
#include "ml/trainer.h"

using namespace autofeat;

int main() {
  // 1. A synthetic lake: base table with weak features, 6 satellite tables,
  //    the strongest features planted two hops away from the base table.
  datagen::LakeSpec spec;
  spec.name = "demo";
  spec.rows = 1200;
  spec.joinable_tables = 6;
  spec.total_features = 24;
  spec.seed = 7;
  datagen::BuiltLake built = datagen::BuildLake(spec);

  std::printf("Lake: %zu tables, base = %s\n", built.lake.num_tables(),
              built.base_table.c_str());
  for (const auto& truth : built.truth) {
    std::printf("  %-10s depth=%zu effect=%.2f features=%zu\n",
                truth.name.c_str(), truth.depth, truth.effect,
                truth.num_features);
  }

  // 2. The Dataset Relation Graph from the declared KFK constraints
  //    (the paper's "benchmark setting").
  auto drg = BuildDrgFromKfk(built.lake);
  drg.status().Abort("building DRG");
  std::printf("DRG: %zu nodes, %zu edges\n\n", drg->num_nodes(),
              drg->num_edges());

  // 3. Baseline: accuracy of the unaugmented base table.
  auto base_table = built.lake.GetTable(built.base_table);
  base_table.status().Abort();
  auto base_eval = ml::TrainAndEvaluate(**base_table, built.label_column,
                                        ml::ModelKind::kLightGbm);
  base_eval.status().Abort("training on base table");
  std::printf("BASE accuracy      : %.3f\n", base_eval->accuracy);

  // 4. AutoFeat: discover features over transitive join paths.
  AutoFeatConfig config;
  config.tau = 0.65;
  config.kappa = 15;
  config.top_k_paths = 4;
  AutoFeat engine(&built.lake, &*drg, config);
  auto augmented = engine.Augment(built.base_table, built.label_column,
                                  ml::ModelKind::kLightGbm);
  augmented.status().Abort("AutoFeat augmentation");

  std::printf("AutoFeat accuracy  : %.3f\n", augmented->accuracy);
  std::printf("paths explored     : %zu (pruned: %zu infeasible, %zu quality)\n",
              augmented->discovery.paths_explored,
              augmented->discovery.paths_pruned_infeasible,
              augmented->discovery.paths_pruned_quality);
  std::printf("feature sel. time  : %.3f s\n",
              augmented->discovery.feature_selection_seconds);
  std::printf("total time         : %.3f s\n", augmented->total_seconds);

  std::printf("\nBest join path (%zu hops):\n",
              augmented->best_path.path.length());
  for (const auto& step : augmented->best_path.path.steps) {
    std::printf("  %s.%s -> %s.%s (weight %.2f)\n",
                drg->NodeName(step.from_node).c_str(),
                step.from_column.c_str(), drg->NodeName(step.to_node).c_str(),
                step.to_column.c_str(), step.weight);
  }
  std::printf("Selected features:\n");
  for (const auto& fs : augmented->best_path.selected_features) {
    std::printf("  %-24s score %.3f\n", fs.name.c_str(), fs.score);
  }
  return 0;
}
