#include "core/tuning.h"

#include "util/timer.h"

namespace autofeat {

Result<TuningResult> TuneHyperParameters(const DataLake& lake,
                                         const DatasetRelationGraph& drg,
                                         const std::string& base_table,
                                         const std::string& label_column,
                                         const AutoFeatConfig& base_config,
                                         const TuningOptions& options) {
  if (options.tau_grid.empty() || options.kappa_grid.empty()) {
    return Status::InvalidArgument("tuning grids must be non-empty");
  }

  TuningResult result;
  bool have_best = false;
  for (double tau : options.tau_grid) {
    for (size_t kappa : options.kappa_grid) {
      AutoFeatConfig config = base_config;
      config.tau = tau;
      config.kappa = kappa;
      config.sample_rows = options.sample_rows;
      config.seed = options.seed;

      Timer timer;
      AutoFeat engine(&lake, &drg, config);
      AF_ASSIGN_OR_RETURN(
          AugmentationResult augmented,
          engine.Augment(base_table, label_column, options.model));

      TuningTrial trial;
      trial.tau = tau;
      trial.kappa = kappa;
      trial.accuracy = augmented.accuracy;
      trial.seconds = timer.ElapsedSeconds();
      trial.produced_paths = !augmented.discovery.ranked.empty();
      result.trials.push_back(trial);

      // Strictly-better accuracy wins; ties prefer smaller kappa (cheaper)
      // and then larger tau (stricter pruning).
      bool better = !have_best || trial.accuracy > result.best_trial.accuracy;
      if (!better && have_best &&
          trial.accuracy == result.best_trial.accuracy) {
        if (trial.kappa < result.best_trial.kappa) {
          better = true;
        } else if (trial.kappa == result.best_trial.kappa &&
                   trial.tau > result.best_trial.tau) {
          better = true;
        }
      }
      if (better) {
        result.best_trial = trial;
        result.best_config = base_config;
        result.best_config.tau = tau;
        result.best_config.kappa = kappa;
        have_best = true;
      }
    }
  }
  return result;
}

}  // namespace autofeat
