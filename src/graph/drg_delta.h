// Incremental DRG maintenance: a canonical per-table-pair match store that
// a mutation path updates in place and rebuilds a DatasetRelationGraph from.
//
// Why a store + rebuild rather than editing the graph? Edge *insertion
// order* is observable: Neighbors() lists nodes in first-edge order, BFS
// path enumeration follows it, and discovery ranking breaks ties by BFS
// order. A cold BuildDrgByDiscovery folds matches in ascending (i, j)
// lake-order — so an incrementally maintained graph is byte-identical to a
// cold rebuild only if its edges are folded in exactly that order too.
// Appending "just the new edges" to a live graph would diverge.
//
// The store therefore keeps matches keyed by *table-name pair* and rebuilds
// the graph object canonically (nodes in lake order, pair edges ascending
// (i, j)) after every mutation. Rebuilding is O(nodes + edges) — trivially
// cheap next to re-matching — while the expensive part (scoring) stays
// incremental: a mutation re-scores only pairs touching mutated tables.

#ifndef AUTOFEAT_GRAPH_DRG_DELTA_H_
#define AUTOFEAT_GRAPH_DRG_DELTA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/drg.h"
#include "util/status.h"

namespace autofeat {

/// \brief One scored column pair between two tables (graph-layer mirror of
/// the discovery layer's ColumnMatch, kept here so graph does not depend on
/// discovery).
struct PairMatch {
  std::string left_column;
  std::string right_column;
  double score = 0.0;

  bool operator==(const PairMatch& other) const {
    return left_column == other.left_column &&
           right_column == other.right_column && score == other.score;
  }
};

/// \brief Canonical store of per-pair schema matches, the source of truth
/// the serving layer rebuilds its DRG from after each mutation.
class DrgMatchStore {
 public:
  /// Replaces the matches for the unordered pair {left, right}. `matches`
  /// must be oriented left -> right where `left` precedes `right` in lake
  /// order *at call time*; the store keys pairs order-insensitively and
  /// re-orients at build time, so later mutations shifting relative order
  /// (drop + re-add) stay correct. An empty vector erases the pair.
  void SetMatches(const std::string& left, const std::string& right,
                  std::vector<PairMatch> matches);

  /// Drops every pair involving `table` (table dropped or about to be
  /// re-matched from scratch).
  void PurgeTable(const std::string& table);

  /// The stored matches for {a, b} oriented a -> b (empty if none).
  std::vector<PairMatch> MatchesFor(const std::string& a,
                                    const std::string& b) const;

  /// Rebuilds the graph canonically: one node per lake table in
  /// `lake_order`, then for ascending (i, j) the stored matches of pair
  /// (table i, table j) as edges, in stored (match-score) order — exactly
  /// the fold order of a cold BuildDrgByDiscovery. Stored pairs whose
  /// tables are absent from `lake_order` are ignored (they belong to
  /// dropped tables awaiting purge).
  Result<DatasetRelationGraph> BuildGraph(
      const std::vector<std::string>& lake_order) const;

  size_t num_pairs() const { return pairs_.size(); }

 private:
  struct StoredPair {
    // Orientation the matches were stored under.
    std::string left;
    std::string right;
    std::vector<PairMatch> matches;
  };

  static std::string PairKey(const std::string& a, const std::string& b);

  std::unordered_map<std::string, StoredPair> pairs_;
};

}  // namespace autofeat

#endif  // AUTOFEAT_GRAPH_DRG_DELTA_H_
