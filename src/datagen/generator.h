// Synthetic binary-classification data generator.
//
// Substitute for the paper's OpenML/Kaggle/UCI datasets (see DESIGN.md §1):
// produces a flat table with informative, redundant (linear combinations)
// and noise features plus a binary label, in the style of scikit-learn's
// make_classification. The lake builder then scatters these features across
// joinable tables with known ground truth.

#ifndef AUTOFEAT_DATAGEN_GENERATOR_H_
#define AUTOFEAT_DATAGEN_GENERATOR_H_

#include <string>

#include "table/table.h"
#include "util/rng.h"

namespace autofeat::datagen {

struct GeneratorOptions {
  size_t rows = 1000;
  /// Features that truly drive the label (class-conditional Gaussians).
  size_t informative_features = 5;
  /// Noisy linear combinations of informative features.
  size_t redundant_features = 3;
  /// Pure standard-normal noise features.
  size_t noise_features = 8;
  /// Probability of flipping a label (irreducible error).
  double label_noise = 0.05;
  /// Distance between class means in units of feature stddev.
  double class_separation = 1.1;
  /// Fraction of feature cells nulled out (simulates dirty open data).
  double missing_rate = 0.0;
  uint64_t seed = 42;
};

/// Generates a table named `table_name` with columns:
///   row_id (int64 surrogate key 0..rows-1),
///   inf_0..inf_{I-1}, red_0..red_{R-1}, noise_0..noise_{N-1} (doubles),
///   label (int64 in {0, 1}).
Table GenerateClassification(const GeneratorOptions& options,
                             const std::string& table_name);

}  // namespace autofeat::datagen

#endif  // AUTOFEAT_DATAGEN_GENERATOR_H_
