#include "relational/join.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

Table MakeLeft() {
  Table t("left");
  t.AddColumn("id", Column::Int64s({1, 2, 3, 4})).Abort();
  t.AddColumn("x", Column::Doubles({0.1, 0.2, 0.3, 0.4})).Abort();
  return t;
}

Table MakeRight() {
  Table t("right");
  t.AddColumn("rid", Column::Int64s({2, 3, 5})).Abort();
  t.AddColumn("y", Column::Strings({"b", "c", "e"})).Abort();
  return t;
}

TEST(LeftJoinTest, PreservesLeftRowCountAndOrder) {
  Rng rng(1);
  auto r = LeftJoin(MakeLeft(), "id", MakeRight(), "rid", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 4u);
  auto ids = *r->table.GetColumn("id");
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ids->GetInt64(i), static_cast<int64_t>(i + 1));
  }
}

TEST(LeftJoinTest, MatchesAndNulls) {
  Rng rng(1);
  auto r = LeftJoin(MakeLeft(), "id", MakeRight(), "rid", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.matched_rows, 2u);
  EXPECT_EQ(r->stats.total_rows, 4u);
  auto y = *r->table.GetColumn("y");
  EXPECT_TRUE(y->IsNull(0));   // id=1 unmatched
  EXPECT_EQ(y->GetString(1), "b");
  EXPECT_EQ(y->GetString(2), "c");
  EXPECT_TRUE(y->IsNull(3));   // id=4 unmatched
}

TEST(LeftJoinTest, AppendsAllRightColumns) {
  Rng rng(1);
  auto r = LeftJoin(MakeLeft(), "id", MakeRight(), "rid", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->table.HasColumn("rid"));
  EXPECT_TRUE(r->table.HasColumn("y"));
  EXPECT_EQ(r->table.num_columns(), 4u);
}

TEST(LeftJoinTest, MissingKeyColumnFails) {
  Rng rng(1);
  EXPECT_FALSE(LeftJoin(MakeLeft(), "nope", MakeRight(), "rid", &rng).ok());
  EXPECT_FALSE(LeftJoin(MakeLeft(), "id", MakeRight(), "nope", &rng).ok());
}

TEST(LeftJoinTest, NoMatchesSucceedsWithZeroMatchedRows) {
  Table right("r");
  right.AddColumn("rid", Column::Int64s({100, 200})).Abort();
  right.AddColumn("z", Column::Doubles({1, 2})).Abort();
  Rng rng(1);
  auto r = LeftJoin(MakeLeft(), "id", right, "rid", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.matched_rows, 0u);
  EXPECT_EQ((*r->table.GetColumn("z"))->null_count(), 4u);
}

TEST(LeftJoinTest, NullKeysNeverMatch) {
  Table left("l");
  left.AddColumn("id", Column::Int64s({1, 2}, {1, 0})).Abort();
  Table right("r");
  right.AddColumn("id2", Column::Int64s({1, 2}, {1, 0})).Abort();
  right.AddColumn("v", Column::Doubles({10, 20})).Abort();
  Rng rng(1);
  auto r = LeftJoin(left, "id", right, "id2", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.matched_rows, 1u);  // Only id=1.
}

TEST(LeftJoinTest, CrossTypeNumericKeysMatch) {
  Table left("l");
  left.AddColumn("k", Column::Doubles({1.0, 2.0})).Abort();
  Table right("r");
  right.AddColumn("k2", Column::Int64s({2})).Abort();
  right.AddColumn("v", Column::Strings({"two"})).Abort();
  Rng rng(1);
  auto r = LeftJoin(left, "k", right, "k2", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.matched_rows, 1u);
  EXPECT_EQ((*r->table.GetColumn("v"))->GetString(1), "two");
}

TEST(LeftJoinTest, CollidingColumnNamesGetSuffix) {
  Table left = MakeLeft();
  Table right("r");
  right.AddColumn("id", Column::Int64s({1, 2})).Abort();  // collides
  right.AddColumn("x", Column::Doubles({9, 8})).Abort();  // collides
  Rng rng(1);
  auto r = LeftJoin(left, "id", right, "id", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->table.HasColumn("id#2"));
  EXPECT_TRUE(r->table.HasColumn("x#2"));
}

TEST(NormalizeCardinalityTest, OneRowPerKey) {
  Table t("dup");
  t.AddColumn("k", Column::Int64s({1, 1, 2, 2, 2, 3})).Abort();
  t.AddColumn("v", Column::Doubles({1, 2, 3, 4, 5, 6})).Abort();
  Rng rng(7);
  auto norm = NormalizeJoinCardinality(t, "k", &rng);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->num_rows(), 3u);
  // First-seen key order is preserved.
  auto k = *norm->GetColumn("k");
  EXPECT_EQ(k->GetInt64(0), 1);
  EXPECT_EQ(k->GetInt64(1), 2);
  EXPECT_EQ(k->GetInt64(2), 3);
}

TEST(NormalizeCardinalityTest, DropsNullKeys) {
  Table t("nulls");
  t.AddColumn("k", Column::Int64s({1, 2, 3}, {1, 0, 1})).Abort();
  Rng rng(7);
  auto norm = NormalizeJoinCardinality(t, "k", &rng);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->num_rows(), 2u);
}

TEST(NormalizeCardinalityTest, PickIsDeterministicGivenSeed) {
  Table t("dup");
  std::vector<int64_t> keys, vals;
  for (int64_t i = 0; i < 50; ++i) {
    keys.push_back(i % 10);
    vals.push_back(i);
  }
  t.AddColumn("k", Column::Int64s(keys)).Abort();
  t.AddColumn("v", Column::Int64s(vals)).Abort();
  Rng rng_a(11), rng_b(11);
  auto a = NormalizeJoinCardinality(t, "k", &rng_a);
  auto b = NormalizeJoinCardinality(t, "k", &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Equals(*b));
}

// Property: many-to-many join still returns exactly |left| rows.
class JoinCardinalityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinCardinalityPropertyTest, LeftRowCountInvariant) {
  int duplication = GetParam();
  Table left("l");
  std::vector<int64_t> lk;
  for (int64_t i = 0; i < 20; ++i) lk.push_back(i % 5);
  left.AddColumn("k", Column::Int64s(lk)).Abort();

  Table right("r");
  std::vector<int64_t> rk;
  std::vector<double> rv;
  for (int64_t i = 0; i < 5; ++i) {
    for (int d = 0; d < duplication; ++d) {
      rk.push_back(i);
      rv.push_back(static_cast<double>(i * 10 + d));
    }
  }
  right.AddColumn("k2", Column::Int64s(rk)).Abort();
  right.AddColumn("v", Column::Doubles(rv)).Abort();

  Rng rng(3);
  auto r = LeftJoin(left, "k", right, "k2", &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), left.num_rows());
  EXPECT_EQ(r->stats.matched_rows, left.num_rows());
  EXPECT_EQ(r->stats.right_distinct_keys, 5u);
}

INSTANTIATE_TEST_SUITE_P(Duplication, JoinCardinalityPropertyTest,
                         ::testing::Values(1, 2, 5, 20));

TEST(JoinCompletenessTest, MeasuresAppendedColumnsOnly) {
  Rng rng(1);
  auto r = LeftJoin(MakeLeft(), "id", MakeRight(), "rid", &rng);
  ASSERT_TRUE(r.ok());
  // rid/y each have 2 nulls out of 4 rows -> completeness 0.5.
  auto appended = JoinCompleteness(r->table, {"rid", "y"});
  ASSERT_TRUE(appended.ok());
  EXPECT_NEAR(*appended, 0.5, 1e-12);
  // Left columns are complete.
  auto left_cols = JoinCompleteness(r->table, {"id", "x"});
  ASSERT_TRUE(left_cols.ok());
  EXPECT_DOUBLE_EQ(*left_cols, 1.0);
  auto empty = JoinCompleteness(r->table, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_DOUBLE_EQ(*empty, 1.0);
}

TEST(JoinCompletenessTest, MissingAppendedColumnIsAnError) {
  Rng rng(1);
  auto r = LeftJoin(MakeLeft(), "id", MakeRight(), "rid", &rng);
  ASSERT_TRUE(r.ok());
  // A column name that never made it into the joined table must surface as
  // a status, not silently skew the ratio toward the surviving columns.
  auto missing = JoinCompleteness(r->table, {"rid", "no_such_column"});
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace autofeat
