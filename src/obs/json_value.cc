#include "obs/json_value.h"

#include <cctype>
#include <cstdlib>

namespace autofeat::obs {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue value;
    AF_RETURN_NOT_OK(Value(&value));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Value(JsonValue* out) {
    if (depth_ > 256) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->str);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = (c == 't');
      return Literal(c == 't' ? "true" : "false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    return Number(out);
  }

  Status Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      std::string key;
      AF_RETURN_NOT_OK(String(&key));
      SkipWs();
      if (Peek() != ':') return Fail("expected ':' in object");
      ++pos_;
      SkipWs();
      JsonValue value;
      AF_RETURN_NOT_OK(Value(&value));
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        --depth_;
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      --depth_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      JsonValue value;
      AF_RETURN_NOT_OK(Value(&value));
      out->items.push_back(std::move(value));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        --depth_;
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status String(std::string* out) {
    if (Peek() != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("bad escape");
        char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': out->push_back('"'); pos_ += 2; break;
          case '\\': out->push_back('\\'); pos_ += 2; break;
          case '/': out->push_back('/'); pos_ += 2; break;
          case 'b': out->push_back('\b'); pos_ += 2; break;
          case 'f': out->push_back('\f'); pos_ += 2; break;
          case 'n': out->push_back('\n'); pos_ += 2; break;
          case 'r': out->push_back('\r'); pos_ += 2; break;
          case 't': out->push_back('\t'); pos_ += 2; break;
          case 'u': {
            if (pos_ + 5 >= text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (size_t i = 2; i <= 5; ++i) {
              unsigned char h = static_cast<unsigned char>(text_[pos_ + i]);
              if (!std::isxdigit(h)) return Fail("bad \\u escape");
              code = code * 16 +
                     (std::isdigit(h) ? h - '0' : (std::tolower(h) - 'a') + 10);
            }
            AppendUtf8(out, code);
            pos_ += 6;
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      if (c < 0x20) return Fail("raw control character in string");
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Fail("unterminated string");
  }

  // Surrogate pairs are not recombined — BENCH/trace outputs never emit
  // them; a lone surrogate decodes to its 3-byte form, which round-trips.
  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status Number(JsonValue* out) {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected digits after '.'");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected exponent digits");
      }
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return Status::OK();
  }

  Status Literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail("bad literal");
      }
    }
    return Status::OK();
  }

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace autofeat::obs
