#include "qa/repro.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "table/csv.h"

namespace autofeat::qa {
namespace {

std::string OneLine(std::string text) {
  for (char& ch : text) {
    if (ch == '\n' || ch == '\r') ch = ' ';
  }
  return text;
}

}  // namespace

Status WriteRepro(const FuzzedLake& lake, const std::string& invariant_name,
                  const std::string& message, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create repro directory " + directory +
                           ": " + ec.message());
  }
  for (const Table& table : lake.lake.tables()) {
    AF_RETURN_NOT_OK(
        WriteCsvFile(table, directory + "/" + table.name() + ".csv"));
  }
  std::ofstream manifest(directory + "/MANIFEST.txt");
  if (!manifest) {
    return Status::IOError("cannot write " + directory + "/MANIFEST.txt");
  }
  manifest << "seed " << lake.seed << "\n";
  manifest << "base " << lake.base_table << "\n";
  manifest << "label " << lake.label_column << "\n";
  manifest << "invariant " << invariant_name << "\n";
  manifest << "message " << OneLine(message) << "\n";
  for (const Table& table : lake.lake.tables()) {
    manifest << "table " << table.name() << "\n";
  }
  for (const KfkConstraint& kfk : lake.lake.kfk_constraints()) {
    manifest << "kfk " << kfk.from_table << " " << kfk.from_column << " "
             << kfk.to_table << " " << kfk.to_column << "\n";
  }
  size_t oi = 0;
  for (const serve::LakeMutation& op : lake.trace) {
    std::string payload = "-";
    if (op.kind != serve::LakeMutation::Kind::kDropTable) {
      payload = "op" + std::to_string(oi) + ".csv";
      AF_RETURN_NOT_OK(WriteCsvFile(op.payload, directory + "/" + payload));
    }
    manifest << "op " << serve::MutationKindName(op.kind) << " "
             << op.TargetTable() << " " << payload << "\n";
    ++oi;
  }
  return Status::OK();
}

Result<FuzzedLake> LoadRepro(const std::string& directory,
                             ReproManifest* manifest) {
  std::ifstream in(directory + "/MANIFEST.txt");
  if (!in) {
    return Status::IOError("cannot read " + directory +
                           "/MANIFEST.txt (not a repro directory?)");
  }
  FuzzedLake lake;
  ReproManifest parsed;
  std::vector<std::string> table_names;
  std::vector<KfkConstraint> constraints;
  struct PendingOp {
    serve::LakeMutation::Kind kind;
    std::string table;
    std::string payload_file;  // "-" for drops
  };
  std::vector<PendingOp> ops;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t space = line.find(' ');
    std::string key = line.substr(0, space);
    std::string value =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (key == "seed") {
      parsed.seed = std::stoull(value);
    } else if (key == "base") {
      parsed.base_table = value;
    } else if (key == "label") {
      parsed.label_column = value;
    } else if (key == "invariant") {
      parsed.invariant = value;
    } else if (key == "message") {
      parsed.message = value;
    } else if (key == "table") {
      table_names.push_back(value);
    } else if (key == "kfk") {
      std::istringstream fields(value);
      KfkConstraint kfk;
      if (!(fields >> kfk.from_table >> kfk.from_column >> kfk.to_table >>
            kfk.to_column)) {
        return Status::InvalidArgument("malformed kfk line in MANIFEST.txt: " +
                                       line);
      }
      constraints.push_back(std::move(kfk));
    } else if (key == "op") {
      std::istringstream fields(value);
      std::string kind_text;
      PendingOp op;
      if (!(fields >> kind_text >> op.table >> op.payload_file)) {
        return Status::InvalidArgument("malformed op line in MANIFEST.txt: " +
                                       line);
      }
      AF_ASSIGN_OR_RETURN(op.kind, serve::ParseMutationKind(kind_text));
      ops.push_back(std::move(op));
    } else {
      return Status::InvalidArgument("unknown MANIFEST.txt key: " + key);
    }
  }
  if (parsed.base_table.empty() || parsed.label_column.empty()) {
    return Status::InvalidArgument(
        "MANIFEST.txt is missing the base/label entries");
  }
  for (const std::string& name : table_names) {
    AF_ASSIGN_OR_RETURN(Table table,
                        ReadCsvFile(directory + "/" + name + ".csv"));
    table.set_name(name);
    AF_RETURN_NOT_OK(lake.lake.AddTable(std::move(table)));
  }
  for (KfkConstraint& kfk : constraints) {
    lake.lake.AddKfk(std::move(kfk));
  }
  for (PendingOp& op : ops) {
    serve::LakeMutation mutation;
    mutation.kind = op.kind;
    mutation.table = op.table;
    if (op.payload_file != "-") {
      AF_ASSIGN_OR_RETURN(
          mutation.payload,
          ReadCsvFile(directory + "/" + op.payload_file));
      mutation.payload.set_name(op.table);
    }
    lake.trace.push_back(std::move(mutation));
  }
  lake.base_table = parsed.base_table;
  lake.label_column = parsed.label_column;
  lake.seed = parsed.seed;
  if (manifest != nullptr) *manifest = parsed;
  return lake;
}

}  // namespace autofeat::qa
