// Invariant registry: metamorphic/algebraic checks run over fuzzed lakes.
//
// Every invariant is a cheap, total predicate over one FuzzedLake: it either
// holds (OK), is vacuous for this lake's shape (also OK), or is violated
// (non-OK Status whose message names the witness). Invariants never mutate
// their input and never depend on global state, so the runner can evaluate
// them in any order and across threads.
//
// Adding one: write a `Status Check(const FuzzedLake&)`, append an entry to
// BuiltinInvariants(), and (if it guards a bug fix) land the shrunk repro as
// a regression test. See DESIGN.md "Testing strategy".

#ifndef AUTOFEAT_QA_INVARIANTS_H_
#define AUTOFEAT_QA_INVARIANTS_H_

#include <functional>
#include <string>
#include <vector>

#include "core/autofeat.h"
#include "core/config.h"
#include "qa/lake_fuzzer.h"
#include "util/status.h"

namespace autofeat::qa {

/// \brief One registered metamorphic/algebraic check.
struct Invariant {
  std::string name;         // stable id, e.g. "join.left_preserves_rows"
  std::string description;  // one-line statement of the property
  std::function<Status(const FuzzedLake&)> check;
};

/// The production invariant registry (>= 10 checks covering join algebra,
/// information-theory bounds, ranking sanity, determinism and round trips).
const std::vector<Invariant>& BuiltinInvariants();

/// A deliberately wrong test-only invariant ("no column contains a null")
/// used to exercise the shrinker and the repro pipeline end to end.
Invariant PlantedNoNullsInvariant();

/// BuiltinInvariants() plus the planted bug when `include_planted`.
std::vector<Invariant> RegistryInvariants(bool include_planted);

/// The discovery configuration invariants use: KFK DRG, full rows
/// (no sampling), fast path on, seeded from the lake's own seed.
AutoFeatConfig FuzzDiscoveryConfig(const FuzzedLake& fz, size_t num_threads);

/// Canonical text fingerprint of a DiscoveryResult: explored/pruned
/// counters plus per-path score (17 significant digits), join steps and
/// selected features. Byte-equal fingerprints == identical discovery output.
std::string DiscoveryFingerprint(const DiscoveryResult& result);

}  // namespace autofeat::qa

#endif  // AUTOFEAT_QA_INVARIANTS_H_
