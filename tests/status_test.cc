#include "util/status.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad x");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad x");
}

TEST(StatusTest, DistinctCodes) {
  EXPECT_EQ(Status::KeyError("k").code(), StatusCode::kKeyError);
  EXPECT_EQ(Status::IndexError("i").code(), StatusCode::kIndexError);
  EXPECT_EQ(Status::TypeError("t").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::IOError("io").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("n").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::UnknownError("u").code(), StatusCode::kUnknownError);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(Status::CodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(Status::CodeName(StatusCode::kKeyError), "KeyError");
  EXPECT_STREQ(Status::CodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::KeyError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ConstructingFromOkStatusBecomesError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnknownError);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status PropagatesWithMacro() {
  AF_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  Status s = PropagatesWithMacro();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

Result<int> MakeValue(bool ok) {
  if (ok) return 7;
  return Status::InvalidArgument("nope");
}

Status UsesAssignOrReturn(bool ok, int* out) {
  AF_ASSIGN_OR_RETURN(*out, MakeValue(ok));
  return Status::OK();
}

TEST(MacroTest, AssignOrReturnAssignsOnSuccess) {
  int v = 0;
  ASSERT_TRUE(UsesAssignOrReturn(true, &v).ok());
  EXPECT_EQ(v, 7);
}

TEST(MacroTest, AssignOrReturnPropagatesOnFailure) {
  int v = 0;
  Status s = UsesAssignOrReturn(false, &v);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace autofeat
