// Redundancy analysis (paper §V-D): the unified conditional likelihood
// maximisation framework (Eq. 1)
//
//   J(X_k) = I(X_k;Y) - beta * sum_{X_j in S} I(X_j;X_k)
//                     + lambda * sum_{X_j in S} I(X_j;X_k | Y)
//
// instantiated as MIFS, MRMR, CIFE, JMI, plus the CMIM special case (Eq. 2).
// Candidates are screened greedily: a candidate is kept iff its J score
// against the currently selected set S is positive (it adds information that
// is not already represented).

#ifndef AUTOFEAT_FS_REDUNDANCY_H_
#define AUTOFEAT_FS_REDUNDANCY_H_

#include <string>
#include <vector>

#include "fs/feature_view.h"
#include "fs/relevance.h"

namespace autofeat {

/// The five redundancy criteria compared in §V-D. MRMR is AutoFeat's
/// recommended default.
enum class RedundancyKind {
  kMifs,  // beta = 0.5, lambda = 0
  kMrmr,  // beta = 1/|S|, lambda = 0
  kCife,  // beta = 1, lambda = 1
  kJmi,   // beta = 1/|S|, lambda = 1/|S|
  kCmim,  // Eq. 2: J = I(Xk;Y) - max_j [ I(Xj;Xk) - I(Xj;Xk|Y) ]
};

const char* RedundancyKindName(RedundancyKind kind);

struct RedundancyOptions {
  RedundancyKind kind = RedundancyKind::kMrmr;
  /// MIFS inter-feature penalty (the paper uses beta = 0.5).
  double mifs_beta = 0.5;
};

/// \brief A set of already-selected features represented by their
/// discretised codes (what S contributes to Eq. 1).
struct SelectedFeatureSet {
  std::vector<std::string> names;
  std::vector<std::vector<int>> codes;

  size_t size() const { return names.size(); }
  bool Contains(const std::string& name) const;
  void Add(std::string name, std::vector<int> feature_codes);
};

/// Greedily screens `candidates` (feature indices into `view`, typically the
/// relevance-ranked top-kappa, in ranked order) against `selected`.
/// Candidates with J > 0 are accepted — and immediately join S, so later
/// candidates are also penalised for redundancy with earlier ones.
/// Returns accepted features with their J scores; `selected` is updated.
std::vector<FeatureScore> SelectNonRedundant(
    const FeatureView& view, const std::vector<size_t>& candidates,
    SelectedFeatureSet* selected, const RedundancyOptions& options);

/// The raw J score of a single candidate against a fixed selected set
/// (exposed for tests and the empirical study of §V-D).
double RedundancyScore(const std::vector<int>& candidate_codes,
                       const std::vector<int>& label_codes,
                       const std::vector<std::vector<int>>& selected_codes,
                       const RedundancyOptions& options);

}  // namespace autofeat

#endif  // AUTOFEAT_FS_REDUNDANCY_H_
