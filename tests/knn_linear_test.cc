#include <gtest/gtest.h>

#include "ml/knn.h"
#include "ml/linear.h"
#include "support/ml_fixtures.h"

namespace autofeat::ml {
namespace {

TEST(KnnTest, LearnsBlobs) {
  Dataset train = MakeBlobs(400, 1.5, 1);
  Dataset test = MakeBlobs(200, 1.5, 2);
  Knn model;
  EXPECT_GT(HoldoutAccuracy(model, train, test), 0.88);
}

TEST(KnnTest, SolvesXorLocally) {
  Dataset train = MakeXor(500, 3);
  Dataset test = MakeXor(200, 4);
  Knn model;
  EXPECT_GT(HoldoutAccuracy(model, train, test), 0.9);
}

TEST(KnnTest, KOneMemorizesTraining) {
  Dataset train = MakeBlobs(100, 1.0, 5);
  KnnOptions options;
  options.k = 1;
  Knn model(options);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_DOUBLE_EQ(Accuracy(train.labels(), model.PredictProbaAll(train)),
                   1.0);
}

TEST(KnnTest, KLargerThanTrainingSetClamped) {
  Dataset train = MakeBlobs(10, 2.0, 6);
  KnnOptions options;
  options.k = 100;
  Knn model(options);
  ASSERT_TRUE(model.Fit(train).ok());
  double p = model.PredictProba(train, 0);
  EXPECT_NEAR(p, 0.5, 0.11);  // Majority over all 10 balanced rows.
}

TEST(KnnTest, EmptyTrainingFails) {
  Knn model;
  EXPECT_FALSE(model.Fit(Dataset()).ok());
}

TEST(KnnTest, NormalisationMakesScalesIrrelevant) {
  // Blow up one feature's scale: z-scoring keeps accuracy unchanged.
  Dataset train = MakeBlobs(300, 1.5, 7);
  Dataset test = MakeBlobs(200, 1.5, 8);
  Knn baseline;
  double acc1 = HoldoutAccuracy(baseline, train, test);

  auto scale = [](Dataset ds) {
    Table t("scaled");
    Column f0(DataType::kDouble), f1(DataType::kDouble),
        noise(DataType::kDouble), label(DataType::kInt64);
    for (size_t r = 0; r < ds.num_rows(); ++r) {
      f0.AppendDouble(ds.at(r, 0) * 1000.0);
      f1.AppendDouble(ds.at(r, 1));
      noise.AppendDouble(ds.at(r, 2));
      label.AppendInt64(ds.label(r));
    }
    t.AddColumn("f0", std::move(f0)).Abort();
    t.AddColumn("f1", std::move(f1)).Abort();
    t.AddColumn("noise", std::move(noise)).Abort();
    t.AddColumn("label", std::move(label)).Abort();
    return Dataset::FromTable(t, "label").MoveValue();
  };
  Knn scaled;
  double acc2 = HoldoutAccuracy(scaled, scale(train), scale(test));
  EXPECT_NEAR(acc1, acc2, 0.03);
}

TEST(LogRegTest, LearnsBlobs) {
  Dataset train = MakeBlobs(400, 1.5, 9);
  Dataset test = MakeBlobs(200, 1.5, 10);
  LogisticRegressionL1 model;
  EXPECT_GT(HoldoutAccuracy(model, train, test), 0.9);
}

TEST(LogRegTest, CannotSolveXor) {
  // A linear model is at chance on XOR - a sanity check that this really
  // is a linear decision boundary.
  Dataset train = MakeXor(500, 11);
  Dataset test = MakeXor(400, 12);
  LogisticRegressionL1 model;
  EXPECT_LT(HoldoutAccuracy(model, train, test), 0.65);
}

TEST(LogRegTest, L1DrivesNoiseWeightsToZero) {
  Dataset train = MakeBlobs(600, 2.0, 13);
  LogRegOptions options;
  options.l1 = 0.05;
  LogisticRegressionL1 model(options);
  ASSERT_TRUE(model.Fit(train).ok());
  const auto& w = model.weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[2], 0.0) << "noise weight should be soft-thresholded away";
  EXPECT_GT(std::abs(w[0]), 0.0);
  EXPECT_GE(model.num_zero_weights(), 1u);
}

TEST(LogRegTest, StrongerL1MeansMoreZeros) {
  Dataset train = MakeBlobs(400, 0.8, 14);
  LogRegOptions weak;
  weak.l1 = 0.001;
  LogRegOptions strong;
  strong.l1 = 0.5;
  LogisticRegressionL1 a(weak), b(strong);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_GE(b.num_zero_weights(), a.num_zero_weights());
}

TEST(LogRegTest, EmptyTrainingFails) {
  LogisticRegressionL1 model;
  EXPECT_FALSE(model.Fit(Dataset()).ok());
}

TEST(LogRegTest, ProbabilitiesInUnitInterval) {
  Dataset train = MakeBlobs(200, 1.0, 15);
  LogisticRegressionL1 model;
  ASSERT_TRUE(model.Fit(train).ok());
  for (double p : model.PredictProbaAll(train)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace autofeat::ml
