// Additional Column/Schema coverage: key canonicalisation corner cases,
// type-name helpers, reserve/append interactions.

#include <cmath>

#include <gtest/gtest.h>

#include "table/column.h"
#include "table/schema.h"

namespace autofeat {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kDouble), "double");
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
}

TEST(DataTypeTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

TEST(ColumnKeyTest, NegativeNumbersCanonicalise) {
  Column d = Column::Doubles({-3.0});
  Column i = Column::Int64s({-3});
  EXPECT_EQ(d.KeyAt(0), i.KeyAt(0));
}

TEST(ColumnKeyTest, FractionalDoublesKeepPrecision) {
  Column a = Column::Doubles({1.5});
  Column b = Column::Doubles({1.25});
  EXPECT_NE(a.KeyAt(0), b.KeyAt(0));
}

TEST(ColumnKeyTest, NonFiniteDoublesDoNotCollapse) {
  Column c = Column::Doubles({std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()});
  EXPECT_NE(c.KeyAt(0), c.KeyAt(1));
}

TEST(ColumnKeyTest, LargeMagnitudeDoubleFallsBackToDecimalForm) {
  // Beyond the int64-safe range the canonicalisation must not cast.
  Column c = Column::Doubles({1e18});
  EXPECT_FALSE(c.KeyAt(0).empty());
}

TEST(ColumnKeyTest, StringsPassThrough) {
  Column c = Column::Strings({"7"});
  Column i = Column::Int64s({7});
  // A string "7" and the integer 7 share a key representation — useful
  // when CSV parsing types the two sides differently.
  EXPECT_EQ(c.KeyAt(0), i.KeyAt(0));
}

TEST(ColumnTest, ReserveThenAppendWithNulls) {
  Column c(DataType::kDouble);
  c.Reserve(100);
  c.AppendDouble(1.0);
  c.AppendNull();
  c.Reserve(200);
  c.AppendDouble(2.0);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_DOUBLE_EQ(c.GetDouble(2), 2.0);
}

TEST(ColumnTest, ValueToStringPreservesDoubleRoundTrip) {
  double v = 0.1 + 0.2;  // Not exactly 0.3.
  Column c = Column::Doubles({v});
  double parsed = std::strtod(c.ValueToString(0).c_str(), nullptr);
  EXPECT_EQ(parsed, v);  // %.17g guarantees exact round-trip.
}

TEST(ColumnTest, EmptyTake) {
  Column c = Column::Int64s({1, 2, 3});
  Column t = c.Take({});
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.type(), DataType::kInt64);
}

TEST(SchemaTest, FieldsAccessorAndEquality) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"x", DataType::kInt64}});
  Schema c({{"x", DataType::kDouble}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_EQ(a.fields().size(), 1u);
  EXPECT_EQ(a.FieldNames(), (std::vector<std::string>{"x"}));
}

}  // namespace
}  // namespace autofeat
