// Edge cases of the feature-selection stack: degenerate views, zero
// budgets, exotic option combinations.

#include <gtest/gtest.h>

#include "fs/streaming.h"

namespace autofeat {
namespace {

Table LabelOnlyTable(size_t n = 20) {
  Table t("lonely");
  Column label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) label.AppendInt64(static_cast<int64_t>(i % 2));
  t.AddColumn("label", std::move(label)).Abort();
  return t;
}

TEST(FsEdgeCaseTest, ViewWithZeroFeatures) {
  auto view = FeatureView::FromTable(LabelOnlyTable(), "label");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_features(), 0u);
  EXPECT_EQ(view->num_rows(), 20u);
  // Scoring an empty view returns no scores without crashing.
  EXPECT_TRUE(ScoreRelevance(*view, {}, RelevanceOptions{}).empty());
}

TEST(FsEdgeCaseTest, StreamingEmptyBatch) {
  auto view = FeatureView::FromTable(LabelOnlyTable(), "label");
  StreamingFeatureSelector sel({});
  auto result = sel.ProcessBatch(*view, {});
  EXPECT_TRUE(result.relevant.empty());
  EXPECT_TRUE(result.selected.empty());
  EXPECT_TRUE(result.AllIrrelevant());
}

TEST(FsEdgeCaseTest, SelectKBestZeroBudget) {
  std::vector<FeatureScore> scores{{"a", 0.9}};
  EXPECT_TRUE(SelectKBest(scores, 0, 0.0).empty());
}

TEST(FsEdgeCaseTest, ReliefOnEmptyIndexList) {
  Table t = LabelOnlyTable();
  t.AddColumn("x", Column::Doubles(std::vector<double>(20, 1.0))).Abort();
  auto view = FeatureView::FromTable(t, "label");
  RelevanceOptions options;
  options.kind = RelevanceKind::kRelief;
  auto scores = ScoreRelevance(*view, {0}, options);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_DOUBLE_EQ(scores[0].score, 0.0);  // Constant feature: no signal.
}

TEST(FsEdgeCaseTest, MifsBetaIsConfigurable) {
  // A higher beta must penalise a redundant candidate at least as hard.
  std::vector<int> label(400), informative(400), duplicate(400);
  for (size_t i = 0; i < 400; ++i) {
    label[i] = static_cast<int>(i % 2);
    informative[i] = label[i];
    duplicate[i] = label[i];
  }
  std::vector<std::vector<int>> selected{informative};
  RedundancyOptions weak;
  weak.kind = RedundancyKind::kMifs;
  weak.mifs_beta = 0.1;
  RedundancyOptions strong;
  strong.kind = RedundancyKind::kMifs;
  strong.mifs_beta = 2.0;
  EXPECT_GT(RedundancyScore(duplicate, label, selected, weak),
            RedundancyScore(duplicate, label, selected, strong));
}

TEST(FsEdgeCaseTest, AllNullFeatureIsIrrelevant) {
  Table t = LabelOnlyTable(30);
  t.AddColumn("ghost", Column::Nulls(DataType::kDouble, 30)).Abort();
  auto view = FeatureView::FromTable(t, "label");
  ASSERT_TRUE(view.ok());
  StreamingFeatureSelector sel({});
  auto result = sel.ProcessBatch(*view, {0});
  EXPECT_TRUE(result.AllIrrelevant());
}

TEST(FsEdgeCaseTest, DuplicateBatchIndicesHandled) {
  Table t = LabelOnlyTable(50);
  Column x(DataType::kDouble);
  for (size_t i = 0; i < 50; ++i) {
    x.AppendDouble(i % 2 == 0 ? -1.0 : 1.0);
  }
  t.AddColumn("x", std::move(x)).Abort();
  auto view = FeatureView::FromTable(t, "label");
  StreamingFeatureSelector sel({});
  // The same index listed twice must not double-select the feature.
  auto result = sel.ProcessBatch(*view, {0, 0});
  EXPECT_EQ(sel.selected().size(), 1u);
  EXPECT_LE(result.selected.size(), 1u);
}

}  // namespace
}  // namespace autofeat
