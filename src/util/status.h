// Arrow-style Status / Result<T> error handling.
//
// Library code returns Status (or Result<T>) instead of throwing across the
// public API. The AF_RETURN_NOT_OK / AF_ASSIGN_OR_RETURN macros propagate
// failures with minimal boilerplate, mirroring Apache Arrow's idiom.

#ifndef AUTOFEAT_UTIL_STATUS_H_
#define AUTOFEAT_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace autofeat {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kKeyError,
  kIndexError,
  kTypeError,
  kIOError,
  kNotImplemented,
  kUnknownError,
};

/// \brief Outcome of an operation: success or an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status IndexError(std::string msg) {
    return Status(StatusCode::kIndexError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status UnknownError(std::string msg) {
    return Status(StatusCode::kUnknownError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  /// Aborts the process with the error message if the status is not OK.
  /// For use in examples/benches where an error is unrecoverable.
  void Abort(const char* context = nullptr) const {
    if (ok()) return;
    std::cerr << "fatal";
    if (context != nullptr) std::cerr << " (" << context << ")";
    std::cerr << ": " << ToString() << std::endl;
    std::abort();
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kKeyError: return "KeyError";
      case StatusCode::kIndexError: return "IndexError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kUnknownError: return "UnknownError";
    }
    return "Invalid";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors arrow::Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::UnknownError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : status_;
  }

  const T& ValueOrDie() const& {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) status_.Abort("Result::ValueOrDie");
    return std::move(*value_);
  }

  /// Moves the value out; must only be called when ok().
  T&& MoveValue() {
    if (!ok()) status_.Abort("Result::MoveValue");
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define AF_CONCAT_IMPL(x, y) x##y
#define AF_CONCAT(x, y) AF_CONCAT_IMPL(x, y)

/// Propagates a non-OK Status from the enclosing function.
#define AF_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::autofeat::Status _af_st = (expr);           \
    if (!_af_st.ok()) return _af_st;              \
  } while (false)

/// Evaluates `rexpr` (a Result<T>); on success assigns the value to `lhs`,
/// on failure returns the Status from the enclosing function.
#define AF_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = tmp.MoveValue()

#define AF_ASSIGN_OR_RETURN(lhs, rexpr) \
  AF_ASSIGN_OR_RETURN_IMPL(AF_CONCAT(_af_result_, __LINE__), lhs, rexpr)

/// Aborts if `expr` yields a non-OK status. For tests/examples.
#define AF_CHECK_OK(expr)                         \
  do {                                            \
    ::autofeat::Status _af_st = (expr);           \
    _af_st.Abort(#expr);                          \
  } while (false)

}  // namespace autofeat

#endif  // AUTOFEAT_UTIL_STATUS_H_
