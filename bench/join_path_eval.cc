// Candidate-edge evaluation speedup harness (not a paper figure).
//
// Times the full AutoFeat search over the synthetic lake twice at one
// thread: once on the legacy execution path (string-keyed joins, every
// candidate fully materialised) and once on the interned fast path
// (KeyDictionary + JoinIndexCache + factorized scoring). The headline
// number is the candidate-edge evaluation portion of discovery — total
// discovery time minus the feature-selection share, which is identical
// work on both paths. A micro section isolates the raw join kernels.
// Emits BENCH_join_path.json so the perf trajectory is tracked across PRs.

#include <cstdio>
#include <memory>

#include "harness.h"
#include "core/autofeat.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "relational/join.h"
#include "relational/join_index.h"
#include "util/timer.h"

namespace autofeat::benchx {
namespace {

struct DiscoverRun {
  double total_seconds = 0.0;
  double fs_seconds = 0.0;
  double candidate_eval_seconds = 0.0;  // total - fs
  size_t paths_explored = 0;
  size_t ranked = 0;
};

Result<DiscoverRun> RunDiscovery(const datagen::BuiltLake& built,
                                 const DatasetRelationGraph& drg,
                                 bool fast_path) {
  AutoFeatConfig config;
  config.num_threads = 1;
  config.sample_rows = FullMode() ? 2000 : 1000;
  config.max_paths = FullMode() ? 2000 : 600;
  config.join_fast_path = fast_path;
  AutoFeat engine(&built.lake, &drg, config);

  DiscoverRun run;
  Timer timer;
  AF_ASSIGN_OR_RETURN(
      DiscoveryResult discovery,
      engine.DiscoverFeatures(built.base_table, built.label_column));
  run.total_seconds = timer.ElapsedSeconds();
  run.fs_seconds = discovery.feature_selection_seconds;
  run.candidate_eval_seconds = run.total_seconds - run.fs_seconds;
  run.paths_explored = discovery.paths_explored;
  run.ranked = discovery.ranked.size();
  return run;
}

// Untimed instrumented rerun of the fast path: its counters, memory gauges
// and trace ride along in BENCH_join_path.json / TRACE_join_path.json
// without perturbing the timed (metrics-disabled) comparison above.
struct Instrumented {
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Tracer> tracer;
};

Result<Instrumented> InstrumentedDiscovery(const datagen::BuiltLake& built,
                                           const DatasetRelationGraph& drg) {
  Instrumented inst;
  inst.metrics = std::make_unique<obs::MetricsRegistry>();
  inst.tracer = std::make_unique<obs::Tracer>();
  AutoFeatConfig config;
  config.num_threads = 1;
  config.sample_rows = FullMode() ? 2000 : 1000;
  config.max_paths = FullMode() ? 2000 : 600;
  config.join_fast_path = true;
  config.metrics_enabled = true;
  config.metrics = inst.metrics.get();
  config.tracer = inst.tracer.get();
  AutoFeat engine(&built.lake, &drg, config);
  AF_RETURN_NOT_OK(
      engine.DiscoverFeatures(built.base_table, built.label_column).status());
  obs::RecordProcessPeakRss(inst.metrics.get());
  return inst;
}

struct MicroJoin {
  double string_keyed_seconds = 0.0;
  double interned_seconds = 0.0;
  double mapped_seconds = 0.0;  // prebuilt index + row mapping only
};

// Repeatedly joins the base table against its first DRG neighbour through
// each kernel. The mapped variant is the steady-state cost discovery pays
// per candidate once the cache owns the index.
Result<MicroJoin> RunMicroJoins(const datagen::BuiltLake& built,
                                const DatasetRelationGraph& drg,
                                size_t reps) {
  AF_ASSIGN_OR_RETURN(const Table* base, built.lake.GetTable(built.base_table));
  AF_ASSIGN_OR_RETURN(size_t base_node, drg.NodeId(built.base_table));

  const Table* right = nullptr;
  JoinStep edge;
  for (size_t neighbor : drg.Neighbors(base_node)) {
    std::vector<JoinStep> edges = drg.BestEdgesBetween(base_node, neighbor);
    if (edges.empty()) continue;
    auto r = built.lake.GetTable(drg.NodeName(neighbor));
    if (!r.ok()) continue;
    if (!base->HasColumn(edges.front().from_column)) continue;
    right = *r;
    edge = edges.front();
    break;
  }
  if (right == nullptr) {
    return Status::InvalidArgument("no joinable neighbour for micro bench");
  }

  MicroJoin micro;
  {
    Timer t;
    for (size_t i = 0; i < reps; ++i) {
      Rng rng(42);
      AF_RETURN_NOT_OK(JoinStringKeyed(*base, edge.from_column, *right,
                                       edge.to_column, &rng)
                           .status());
    }
    micro.string_keyed_seconds = t.ElapsedSeconds();
  }
  {
    Timer t;
    for (size_t i = 0; i < reps; ++i) {
      Rng rng(42);
      AF_RETURN_NOT_OK(
          Join(*base, edge.from_column, *right, edge.to_column, &rng)
              .status());
    }
    micro.interned_seconds = t.ElapsedSeconds();
  }
  {
    AF_ASSIGN_OR_RETURN(const Column* rkey, right->GetColumn(edge.to_column));
    JoinKeyIndex index = BuildJoinKeyIndex(*rkey, 42);
    AF_ASSIGN_OR_RETURN(const Column* lkey, base->GetColumn(edge.from_column));
    Timer t;
    size_t matched = 0;
    for (size_t i = 0; i < reps; ++i) {
      JoinRowMap map = MapLeftJoin(*lkey, index);
      matched += map.stats.matched_rows;
    }
    micro.mapped_seconds = t.ElapsedSeconds();
    if (matched == 0) std::printf("note: micro join matched no rows\n");
  }
  return micro;
}

}  // namespace
}  // namespace autofeat::benchx

int main() {
  using namespace autofeat;
  using namespace autofeat::benchx;

  PrintModeBanner("join_path_eval");

  auto spec = ScaledSpec(*datagen::FindDataset("credit"));
  auto built = datagen::BuildPaperLake(spec, 1);
  MatchOptions match;
  match.threshold = 0.55;
  auto drg = BuildDrgByDiscovery(built.lake, match);
  drg.status().Abort("drg discovery");

  auto legacy = RunDiscovery(built, *drg, /*fast_path=*/false);
  legacy.status().Abort("legacy discovery");
  auto fast = RunDiscovery(built, *drg, /*fast_path=*/true);
  fast.status().Abort("fast discovery");

  std::printf("paths explored: legacy=%zu fast=%zu | ranked: legacy=%zu "
              "fast=%zu\n\n",
              legacy->paths_explored, fast->paths_explored, legacy->ranked,
              fast->ranked);
  std::printf("%-24s %12s %12s %8s\n", "phase", "legacy (s)", "fast (s)",
              "speedup");
  PrintRule(60);
  auto row = [&](const char* phase, double before, double after) {
    std::printf("%-24s %12.3f %12.3f %7.2fx\n", phase, before, after,
                after > 0 ? before / after : 0.0);
  };
  row("discover_total", legacy->total_seconds, fast->total_seconds);
  row("candidate_eval", legacy->candidate_eval_seconds,
      fast->candidate_eval_seconds);
  row("feature_selection", legacy->fs_seconds, fast->fs_seconds);

  size_t reps = FullMode() ? 200 : 50;
  auto micro = RunMicroJoins(built, *drg, reps);
  micro.status().Abort("micro joins");
  std::printf("\nmicro: %zu repeated base->satellite joins\n", reps);
  PrintRule(60);
  row("join_string_keyed", micro->string_keyed_seconds,
      micro->string_keyed_seconds);
  row("join_interned", micro->string_keyed_seconds, micro->interned_seconds);
  row("join_mapped_cached", micro->string_keyed_seconds,
      micro->mapped_seconds);

  double speedup = fast->candidate_eval_seconds > 0
                       ? legacy->candidate_eval_seconds /
                             fast->candidate_eval_seconds
                       : 0.0;
  std::printf("\ncandidate-edge evaluation speedup: %.2fx (target: >= 2x)\n",
              speedup);

  auto instrumented = InstrumentedDiscovery(built, *drg);
  instrumented.status().Abort("instrumented discovery");

  WriteBenchJson(
      "join_path",
      {{"discover_total_legacy", 1, legacy->total_seconds},
       {"discover_total_fast", 1, fast->total_seconds},
       {"candidate_eval_legacy", 1, legacy->candidate_eval_seconds},
       {"candidate_eval_fast", 1, fast->candidate_eval_seconds},
       {"micro_join_string_keyed", 1, micro->string_keyed_seconds},
       {"micro_join_interned", 1, micro->interned_seconds},
       {"micro_join_mapped_cached", 1, micro->mapped_seconds}},
      instrumented->metrics.get());
  WriteBenchTrace("join_path", *instrumented->tracer);
  return 0;
}
