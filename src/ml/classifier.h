// Abstract binary classifier interface shared by all models.

#ifndef AUTOFEAT_ML_CLASSIFIER_H_
#define AUTOFEAT_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "ml/dataset.h"
#include "util/status.h"

namespace autofeat::ml {

/// \brief A trainable binary classifier.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `train`; may be called once per instance.
  virtual Status Fit(const Dataset& train) = 0;

  /// P(label == 1) for row `row` of `data`. Fit must have succeeded.
  virtual double PredictProba(const Dataset& data, size_t row) const = 0;

  virtual std::string name() const = 0;

  /// Per-feature importance scores aligned with the training dataset's
  /// feature order; empty if the model does not provide them.
  virtual std::vector<double> FeatureImportances() const { return {}; }

  /// Hard 0/1 prediction.
  int Predict(const Dataset& data, size_t row) const {
    return PredictProba(data, row) >= 0.5 ? 1 : 0;
  }

  /// Probabilities for every row of `data`.
  std::vector<double> PredictProbaAll(const Dataset& data) const {
    std::vector<double> out(data.num_rows());
    for (size_t r = 0; r < data.num_rows(); ++r) {
      out[r] = PredictProba(data, r);
    }
    return out;
  }
};

}  // namespace autofeat::ml

#endif  // AUTOFEAT_ML_CLASSIFIER_H_
