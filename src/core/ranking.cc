#include "core/ranking.h"

namespace autofeat {

namespace {
double MeanScore(const std::vector<FeatureScore>& scores) {
  if (scores.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : scores) sum += s.score;
  return sum / static_cast<double>(scores.size());
}
}  // namespace

double ComputeRankingScore(
    const std::vector<FeatureScore>& relevance_scores,
    const std::vector<FeatureScore>& redundancy_scores) {
  double sum_rel = MeanScore(relevance_scores);
  double sum_red = MeanScore(redundancy_scores);
  return (sum_rel + sum_red) / 2.0;
}

}  // namespace autofeat
