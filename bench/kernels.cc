// Scoring-kernel microbenchmark (not a paper figure).
//
// Times each SIMD-rewritten hot kernel against the scalar reference it
// replaced, on inputs shaped like the discovery hot path: dense SU/MI
// scoring (the per-candidate cost center), single-column entropy, GBDT
// histogram accumulation, MinHash signature hashing, and the numeric join
// gather. Each phase reports min-of-reps wall seconds; the su_dense pair is
// the acceptance gate — the binary exits non-zero if the optimised dense
// MI/SU path is not at least 2x the reference while a vector backend is
// compiled in. Emits BENCH_kernels.json for the bench_diff trajectory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness.h"
#include "discovery/lsh_index.h"
#include "discovery/sketch_cache.h"
#include "relational/join_index.h"
#include "stats/discretize.h"
#include "stats/information.h"
#include "table/column.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/timer.h"

namespace autofeat::benchx {
namespace {

// Global sink so no timed loop can be dead-code-eliminated.
double g_sink = 0.0;

// Min-of-reps wall seconds of fn() (each rep runs `inner` calls).
template <typename Fn>
double MinSeconds(size_t reps, Fn&& fn) {
  double best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

std::vector<int> RandomCodes(Rng* rng, size_t n, int k, double missing) {
  std::vector<int> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng->Bernoulli(missing) ? kMissingBin
                                   : static_cast<int>(rng->UniformIndex(
                                         static_cast<size_t>(k)));
  }
  return x;
}

int Run() {
  const bool full = FullMode();
  const size_t n = full ? 400000 : 100000;
  const size_t reps = 5;
  Rng rng(4242);
  std::vector<BenchTiming> timings;
  auto record = [&](const std::string& phase, double seconds) {
    timings.push_back({phase, 1, seconds});
    std::printf("  %-28s %9.3f ms\n", phase.c_str(), seconds * 1e3);
  };

  std::printf("kernels microbench (simd backend: %s, %s mode, n=%zu)\n",
              simd::kBackendName, full ? "full" : "quick", n);

  // --- Dense pair scoring: the per-candidate MI/SU cost center. ---
  std::vector<int> x = RandomCodes(&rng, n, 24, 0.05);
  std::vector<int> y = RandomCodes(&rng, n, 24, 0.05);
  const size_t pair_calls = 8;
  double su_ref = MinSeconds(reps, [&] {
    for (size_t c = 0; c < pair_calls; ++c) {
      g_sink += reference::SymmetricalUncertainty(x, y);
      g_sink += reference::MutualInformationCorrected(x, y);
    }
  });
  double su_simd = MinSeconds(reps, [&] {
    for (size_t c = 0; c < pair_calls; ++c) {
      g_sink += SymmetricalUncertainty(x, y);
      g_sink += MutualInformationCorrected(x, y);
    }
  });
  record("su_dense_reference", su_ref);
  record("su_dense_simd", su_simd);

  // --- Single-column entropy (the satellite fast path). ---
  double ent_ref = MinSeconds(reps, [&] {
    for (size_t c = 0; c < pair_calls; ++c) g_sink += reference::Entropy(x);
  });
  double ent_simd = MinSeconds(reps, [&] {
    for (size_t c = 0; c < pair_calls; ++c) g_sink += Entropy(x);
  });
  record("entropy_single_reference", ent_ref);
  record("entropy_single_simd", ent_simd);

  // --- GBDT histogram accumulation (64 bins, row-index indirection). ---
  const size_t hist_rows = n;
  std::vector<uint8_t> codes(hist_rows);
  std::vector<double> grad(hist_rows), hess(hist_rows);
  std::vector<size_t> rows(hist_rows);
  for (size_t i = 0; i < hist_rows; ++i) {
    codes[i] = static_cast<uint8_t>(rng.UniformIndex(64));
    grad[i] = rng.Normal();
    hess[i] = 0.25;
    rows[i] = i;
  }
  std::vector<double> gh(2 * 64, 0.0);
  const size_t hist_calls = 8;
  double hist_ref = MinSeconds(reps, [&] {
    for (size_t c = 0; c < hist_calls; ++c) {
      std::fill(gh.begin(), gh.end(), 0.0);
      simd::AccumulateGhReference(codes.data(), grad.data(), hess.data(),
                                  rows.data(), hist_rows, gh.data());
      g_sink += gh[0];
    }
  });
  double hist_simd = MinSeconds(reps, [&] {
    for (size_t c = 0; c < hist_calls; ++c) {
      std::fill(gh.begin(), gh.end(), 0.0);
      simd::AccumulateGh(codes.data(), grad.data(), hess.data(), rows.data(),
                         hist_rows, gh.data());
      g_sink += gh[0];
    }
  });
  record("hist_gh_reference", hist_ref);
  record("hist_gh_simd", hist_simd);

  // --- MinHash signatures (64 derivation streams per value). ---
  ColumnSketch sketch;
  sketch.num_distinct = 2000;
  for (size_t v = 0; v < sketch.num_distinct; ++v) {
    sketch.values.insert("value_" + std::to_string(v));
  }
  double mh_ref = MinSeconds(reps, [&] {
    MinHashSignature sig = ComputeMinHashSignatureReference(sketch, 64);
    g_sink += static_cast<double>(sig.mins[0]);
  });
  double mh_simd = MinSeconds(reps, [&] {
    MinHashSignature sig = ComputeMinHashSignature(sketch, 64);
    g_sink += static_cast<double>(sig.mins[0]);
  });
  record("minhash_reference", mh_ref);
  record("minhash_simd", mh_simd);

  // --- Numeric gather through a join row mapping (30% unmatched). ---
  const size_t gather_rows = 4 * n;
  std::vector<double> src_values(n);
  for (double& v : src_values) v = rng.Normal();
  Column src = Column::Doubles(src_values);
  std::vector<uint32_t> mapping(gather_rows);
  for (uint32_t& r : mapping) {
    r = rng.Bernoulli(0.3) ? kNoMatchRow
                           : static_cast<uint32_t>(rng.UniformIndex(n));
  }
  double gather_ref = MinSeconds(reps, [&] {
    std::vector<double> out = GatherNumericReference(src, mapping);
    g_sink += out[0];
  });
  double gather_simd = MinSeconds(reps, [&] {
    std::vector<double> out = GatherNumeric(src, mapping);
    g_sink += out[0];
  });
  record("gather_reference", gather_ref);
  record("gather_simd", gather_simd);

  WriteBenchJson("kernels", timings);

  double su_speedup = su_ref / su_simd;
  std::printf("speedups: su_dense %.2fx, entropy %.2fx, hist %.2fx, "
              "minhash %.2fx, gather %.2fx  (sink %g)\n",
              su_speedup, ent_ref / ent_simd, hist_ref / hist_simd,
              mh_ref / mh_simd, gather_ref / gather_simd, g_sink);
  if (std::string(simd::kBackendName) != "scalar" && su_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: dense MI/SU kernel speedup %.2fx < 2x on the %s "
                 "backend\n",
                 su_speedup, simd::kBackendName);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace autofeat::benchx

int main() { return autofeat::benchx::Run(); }
