// MAB baseline (Liu et al., "Feature Augmentation with Reinforcement
// Learning"; paper §VII-B).
//
// Candidate joinable tables are bandit arms. Each episode, a UCB policy
// picks an arm; the table is joined and an internal model is trained; the
// validation-accuracy delta is the reward, and the join is kept only if the
// reward is positive. The model-in-the-loop reward makes MAB the slowest
// method, and — as the paper reports — it only follows joins whose columns
// share the *same name* on both sides, which blocks most transitive hops.

#ifndef AUTOFEAT_BASELINES_MAB_H_
#define AUTOFEAT_BASELINES_MAB_H_

#include <string>

#include "baselines/augmenter.h"

namespace autofeat::obs {
class MetricsRegistry;
}  // namespace autofeat::obs

namespace autofeat::baselines {

struct MabOptions {
  /// Bandit episodes (each trains at least one model).
  size_t episodes = 12;
  /// UCB exploration constant.
  double ucb_c = 0.7;
  size_t forest_trees = 20;
  /// Rows sampled for internal reward evaluation.
  size_t sample_rows = 1500;
  uint64_t seed = 42;
  /// Optional observability sink, shared with the baseline's join-index
  /// cache (`join_index_cache.*` counters).
  obs::MetricsRegistry* metrics = nullptr;
};

class Mab final : public Augmenter {
 public:
  explicit Mab(MabOptions options = {}) : options_(options) {}

  Result<AugmenterResult> Augment(const DataLake& lake,
                                  const DatasetRelationGraph& drg,
                                  const std::string& base_table,
                                  const std::string& label_column) override;

  std::string name() const override { return "MAB"; }

 private:
  MabOptions options_;
};

}  // namespace autofeat::baselines

#endif  // AUTOFEAT_BASELINES_MAB_H_
