#include "ml/trainer.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace autofeat::ml {
namespace {

Table MakeSignalTable(size_t n, double separation, uint64_t seed) {
  Rng rng(seed);
  Table t("signal");
  Column f(DataType::kDouble), label(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) {
    int y = static_cast<int>(i % 2);
    f.AppendDouble(y == 1 ? rng.Normal(separation, 1)
                          : rng.Normal(-separation, 1));
    label.AppendInt64(y);
  }
  t.AddColumn("f", std::move(f)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  return t;
}

class TrainerModelTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(TrainerModelTest, EveryModelLearnsSeparableData) {
  Table t = MakeSignalTable(600, 2.0, 1);
  auto result = TrainAndEvaluate(t, "label", GetParam());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->accuracy, 0.9) << result->model_name;
  EXPECT_GT(result->auc, 0.9) << result->model_name;
  EXPECT_GT(result->train_seconds, 0.0);
  EXPECT_EQ(result->model_name, ModelKindName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TrainerModelTest,
    ::testing::Values(ModelKind::kLightGbm, ModelKind::kRandomForest,
                      ModelKind::kExtraTrees, ModelKind::kXgBoost,
                      ModelKind::kKnn, ModelKind::kLogRegL1),
    [](const auto& info) {
      std::string name = ModelKindName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(TrainerTest, ModelKindLists) {
  EXPECT_EQ(TreeModelKinds().size(), 4u);
  EXPECT_EQ(NonTreeModelKinds().size(), 2u);
}

TEST(TrainerTest, MakeClassifierProducesNamedModels) {
  for (ModelKind kind : TreeModelKinds()) {
    auto model = MakeClassifier(kind, 1);
    ASSERT_NE(model, nullptr);
  }
}

TEST(TrainerTest, MissingLabelFails) {
  Table t = MakeSignalTable(50, 1.0, 2);
  EXPECT_FALSE(TrainAndEvaluate(t, "ghost", ModelKind::kKnn).ok());
}

TEST(TrainerTest, AverageAccuracyAcrossKinds) {
  Table t = MakeSignalTable(400, 2.0, 3);
  auto avg = AverageAccuracy(t, "label",
                             {ModelKind::kKnn, ModelKind::kLogRegL1});
  ASSERT_TRUE(avg.ok());
  EXPECT_GT(*avg, 0.85);
  EXPECT_FALSE(AverageAccuracy(t, "label", {}).ok());
}

TEST(TrainerTest, DeterministicGivenSeed) {
  Table t = MakeSignalTable(300, 0.8, 4);
  TrainerOptions options;
  options.seed = 17;
  auto a = TrainAndEvaluate(t, "label", ModelKind::kLightGbm, options);
  auto b = TrainAndEvaluate(t, "label", ModelKind::kLightGbm, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->accuracy, b->accuracy);
  EXPECT_DOUBLE_EQ(a->auc, b->auc);
}

TEST(TrainerTest, HandlesStringFeaturesAndNulls) {
  Rng rng(5);
  Table t("dirty");
  Column cat(DataType::kString), num(DataType::kDouble),
      label(DataType::kInt64);
  for (size_t i = 0; i < 300; ++i) {
    int y = static_cast<int>(i % 2);
    if (i % 11 == 0) {
      cat.AppendNull();
    } else {
      cat.AppendString(y == 1 ? "yes" : "no");
    }
    if (i % 7 == 0) {
      num.AppendNull();
    } else {
      num.AppendDouble(rng.Normal(0, 1));
    }
    label.AppendInt64(y);
  }
  t.AddColumn("cat", std::move(cat)).Abort();
  t.AddColumn("num", std::move(num)).Abort();
  t.AddColumn("label", std::move(label)).Abort();
  auto result = TrainAndEvaluate(t, "label", ModelKind::kRandomForest);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->accuracy, 0.85);  // `cat` is nearly the label.
}

}  // namespace
}  // namespace autofeat::ml
