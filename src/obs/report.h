// JSON observability report + deterministic digest.
//
// The report serializes a MetricsRegistry snapshot and a Tracer span tree
// into one JSON document. Two field classes exist:
//
//  * deterministic fields — metric values registered as deterministic, and
//    the span tree's names/ids/parent links — are a pure function of
//    (inputs, seed), identical at any thread count;
//  * volatile fields — wall-clock span timings, span thread ids, and
//    metrics registered as non-deterministic (thread-pool queue stats) —
//    vary run to run.
//
// DeterministicDigest() hashes (FNV-1a 64) the canonical serialization of
// the deterministic fields only, so two runs of the same workload at
// different thread counts produce the same digest even though their
// timings differ. The full report embeds the digest, making "did the
// parallel run compute the same thing?" a string compare.

#ifndef AUTOFEAT_OBS_REPORT_H_
#define AUTOFEAT_OBS_REPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace autofeat::obs {

struct ReportOptions {
  /// Emit span start/end timestamps (volatile).
  bool include_timings = true;
  /// Emit non-deterministic metrics and span thread ids (volatile).
  bool include_volatile = true;
  /// Emit the digest of the deterministic projection.
  bool include_digest = true;
};

/// Serializes metrics + spans (tracer may be null) as pretty-printed JSON.
std::string JsonReport(const MetricsRegistry& metrics, const Tracer* tracer,
                       const ReportOptions& options = {});

/// "fnv1a:<16 hex digits>" over the deterministic projection of the report
/// (no timings, no volatile fields, no digest field).
std::string DeterministicDigest(const MetricsRegistry& metrics,
                                const Tracer* tracer);

/// Minimal JSON well-formedness check (objects, arrays, strings, numbers,
/// booleans, null; UTF-8 passthrough). Used by tests to validate emitted
/// reports without an external JSON dependency.
bool JsonIsValid(const std::string& text);

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_REPORT_H_
