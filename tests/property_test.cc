// Cross-module property tests against reference implementations and
// randomised inputs.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/autofeat.h"
#include "datagen/lake_builder.h"
#include "relational/join.h"
#include "stats/correlation.h"
#include "stats/information.h"
#include "table/csv.h"
#include "util/rng.h"

namespace autofeat {
namespace {

// ---- Left join vs a naive nested-loop reference ----------------------------

// Reference: for each left row, the set of right rows whose key matches.
std::vector<std::vector<size_t>> NestedLoopMatches(const Column& left_key,
                                                   const Column& right_key) {
  std::vector<std::vector<size_t>> matches(left_key.size());
  for (size_t l = 0; l < left_key.size(); ++l) {
    if (left_key.IsNull(l)) continue;
    for (size_t r = 0; r < right_key.size(); ++r) {
      if (right_key.IsNull(r)) continue;
      if (left_key.KeyAt(l) == right_key.KeyAt(r)) matches[l].push_back(r);
    }
  }
  return matches;
}

class JoinReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinReferenceTest, HashJoinAgreesWithNestedLoop) {
  Rng rng(GetParam());
  size_t left_n = 40 + rng.UniformIndex(60);
  size_t right_n = 30 + rng.UniformIndex(60);
  int64_t key_space = 20;

  Table left("l");
  {
    Column k(DataType::kInt64), v(DataType::kDouble);
    for (size_t i = 0; i < left_n; ++i) {
      if (rng.Bernoulli(0.1)) {
        k.AppendNull();
      } else {
        k.AppendInt64(rng.UniformInt(0, key_space));
      }
      v.AppendDouble(rng.Normal(0, 1));
    }
    left.AddColumn("k", std::move(k)).Abort();
    left.AddColumn("v", std::move(v)).Abort();
  }
  Table right("r");
  {
    Column k(DataType::kInt64), w(DataType::kInt64);
    for (size_t i = 0; i < right_n; ++i) {
      if (rng.Bernoulli(0.1)) {
        k.AppendNull();
      } else {
        k.AppendInt64(rng.UniformInt(0, key_space));
      }
      w.AppendInt64(static_cast<int64_t>(i));
    }
    right.AddColumn("rk", std::move(k)).Abort();
    right.AddColumn("w", std::move(w)).Abort();
  }

  Rng join_rng(7);
  auto join = LeftJoin(left, "k", right, "rk", &join_rng);
  ASSERT_TRUE(join.ok());
  const Table& out = join->table;
  ASSERT_EQ(out.num_rows(), left_n);

  auto matches = NestedLoopMatches(*(*left.GetColumn("k")),
                                   *(*right.GetColumn("rk")));
  const Column& w_out = *(*out.GetColumn("w"));
  const Column& w_src = *(*right.GetColumn("w"));
  size_t matched = 0;
  for (size_t l = 0; l < left_n; ++l) {
    if (matches[l].empty()) {
      EXPECT_TRUE(w_out.IsNull(l)) << "row " << l << " must not match";
    } else {
      ASSERT_FALSE(w_out.IsNull(l)) << "row " << l << " must match";
      ++matched;
      // The joined row must be one of the reference candidates
      // (cardinality normalisation picks exactly one).
      bool found = false;
      for (size_t r : matches[l]) {
        if (w_src.GetInt64(r) == w_out.GetInt64(l)) found = true;
      }
      EXPECT_TRUE(found) << "row " << l << " joined a non-matching row";
    }
  }
  EXPECT_EQ(join->stats.matched_rows, matched);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinReferenceTest,
                         ::testing::Range<uint64_t>(1, 9));

// Rows matched on the same key must all receive the same right row (the
// normalisation picks one row per key, not per probe).
TEST(JoinReferenceTest, SameKeySameRightRow) {
  Table left("l");
  left.AddColumn("k", Column::Int64s({5, 5, 5, 5})).Abort();
  Table right("r");
  right.AddColumn("rk", Column::Int64s({5, 5, 5})).Abort();
  right.AddColumn("w", Column::Int64s({10, 20, 30})).Abort();
  Rng rng(3);
  auto join = LeftJoin(left, "k", right, "rk", &rng);
  ASSERT_TRUE(join.ok());
  const Column& w = *(*join->table.GetColumn("w"));
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(w.GetInt64(i), w.GetInt64(0));
  }
}

// ---- CSV randomised round trips ---------------------------------------------

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomTableSurvivesRoundTrip) {
  Rng rng(GetParam());
  size_t rows = 1 + rng.UniformIndex(50);
  Table t("fuzz");
  // One column of each type with random nulls and awkward content.
  {
    Column c(DataType::kInt64);
    for (size_t i = 0; i < rows; ++i) {
      if (rng.Bernoulli(0.2)) {
        c.AppendNull();
      } else {
        c.AppendInt64(rng.UniformInt(-1000000, 1000000));
      }
    }
    t.AddColumn("ints", std::move(c)).Abort();
  }
  {
    Column c(DataType::kDouble);
    for (size_t i = 0; i < rows; ++i) {
      if (rng.Bernoulli(0.2)) {
        c.AppendNull();
      } else {
        c.AppendDouble(rng.Normal(0, 1e6));
      }
    }
    t.AddColumn("doubles", std::move(c)).Abort();
  }
  {
    const char* tokens[] = {"plain", "with,comma", "with\"quote", "  spaced",
                            "0x7f", "ümlaut"};
    Column c(DataType::kString);
    for (size_t i = 0; i < rows; ++i) {
      if (rng.Bernoulli(0.2)) {
        c.AppendNull();
      } else {
        c.AppendString(tokens[rng.UniformIndex(6)]);
      }
    }
    t.AddColumn("strings", std::move(c)).Abort();
  }

  std::string csv = WriteCsvString(t);
  auto back = ReadCsvString(csv, "fuzz");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), rows);
  // Int and double columns must round-trip exactly; strings too. The only
  // permitted difference is column *type* when a column is all-null (an
  // all-null column re-infers as int64).
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& original = t.column(c);
    const Column& parsed = back->column(c);
    for (size_t r = 0; r < rows; ++r) {
      ASSERT_EQ(original.IsNull(r), parsed.IsNull(r))
          << "column " << c << " row " << r;
      if (!original.IsNull(r)) {
        EXPECT_EQ(original.ValueToString(r), parsed.ValueToString(r))
            << "column " << c << " row " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---- Information-theory identities -------------------------------------------

class MiIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiIdentityTest, ChainRuleAndBounds) {
  Rng rng(GetParam());
  size_t n = 500;
  std::vector<int> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<int>(rng.UniformInt(0, 5));
    y[i] = rng.Bernoulli(0.6) ? x[i] % 3 : static_cast<int>(rng.UniformInt(0, 2));
  }
  double hx = Entropy(x);
  double hy = Entropy(y);
  double hxy = JointEntropy(x, y);
  double mi = MutualInformation(x, y);
  // Identities: H(X,Y) = H(X) + H(Y) - I(X;Y); bounds.
  EXPECT_NEAR(hxy, hx + hy - mi, 1e-9);
  EXPECT_LE(hxy, hx + hy + 1e-12);
  EXPECT_GE(hxy, std::max(hx, hy) - 1e-12);
  EXPECT_LE(mi, std::min(hx, hy) + 1e-12);
  // The Miller-Madow corrected estimate never exceeds plug-in by more
  // than the correction terms allow and stays non-negative.
  EXPECT_GE(MutualInformationCorrected(x, y), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiIdentityTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---- Spearman vs explicit rank-formula reference ----------------------------

TEST(SpearmanReferenceTest, MatchesClassicFormulaWithoutTies) {
  // Without ties: rho = 1 - 6*sum(d^2) / (n(n^2-1)).
  Rng rng(4);
  size_t n = 100;
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal(0, 1) + static_cast<double>(i) * 1e-9;  // No ties.
    y[i] = rng.Normal(0, 1) + static_cast<double>(i) * 1e-9;
  }
  auto rx = FractionalRanks(x);
  auto ry = FractionalRanks(y);
  double d2 = 0;
  for (size_t i = 0; i < n; ++i) {
    d2 += (rx[i] - ry[i]) * (rx[i] - ry[i]);
  }
  double dn = static_cast<double>(n);
  double reference = 1.0 - 6.0 * d2 / (dn * (dn * dn - 1.0));
  EXPECT_NEAR(SpearmanCorrelation(x, y), reference, 1e-9);
}

// ---- Traversal-control equivalence on trees -----------------------------------

TEST(TraversalEquivalenceTest, BeamAndDedupAreNoOpsOnKfkTrees) {
  datagen::LakeSpec spec;
  spec.name = "tree";
  spec.rows = 500;
  spec.joinable_tables = 6;
  spec.total_features = 20;
  spec.seed = 23;
  auto built = datagen::BuildLake(spec);
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());

  auto run = [&](size_t beam, bool dedup) {
    AutoFeatConfig config;
    config.sample_rows = 400;
    config.beam_width = beam;
    config.dedup_node_sets = dedup;
    AutoFeat engine(&built.lake, &*drg, config);
    return engine.DiscoverFeatures(built.base_table, built.label_column);
  };
  auto pruned = run(8, true);
  auto pure = run(0, false);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(pure.ok());
  // On a KFK tree there is exactly one path per table set, so the
  // traversal controls must not change what is found.
  EXPECT_EQ(pruned->paths_explored, pure->paths_explored);
  ASSERT_EQ(pruned->ranked.size(), pure->ranked.size());
  for (size_t i = 0; i < pruned->ranked.size(); ++i) {
    EXPECT_DOUBLE_EQ(pruned->ranked[i].score, pure->ranked[i].score);
    EXPECT_TRUE(pruned->ranked[i].path.steps == pure->ranked[i].path.steps);
  }
}

// ---- Ranking-score accumulation -----------------------------------------------

TEST(RankingMonotonicityTest, ExtendingAPathNeverLowersItsScore) {
  datagen::LakeSpec spec;
  spec.name = "mono";
  spec.rows = 600;
  spec.joinable_tables = 6;
  spec.total_features = 24;
  spec.seed = 31;
  auto built = datagen::BuildLake(spec);
  auto drg = BuildDrgFromKfk(built.lake);
  ASSERT_TRUE(drg.ok());
  AutoFeatConfig config;
  config.sample_rows = 400;
  AutoFeat engine(&built.lake, &*drg, config);
  auto result = engine.DiscoverFeatures(built.base_table, built.label_column);
  ASSERT_TRUE(result.ok());

  // For every ranked path, any ranked prefix of it must have score <=
  // the longer path (scores accumulate; batch scores are non-negative).
  for (const auto& long_path : result->ranked) {
    for (const auto& short_path : result->ranked) {
      if (short_path.path.length() >= long_path.path.length()) continue;
      bool is_prefix = true;
      for (size_t i = 0; i < short_path.path.length(); ++i) {
        if (!(short_path.path.steps[i] == long_path.path.steps[i])) {
          is_prefix = false;
          break;
        }
      }
      if (is_prefix) {
        EXPECT_LE(short_path.score, long_path.score + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace autofeat
