#include "support/lake_fixtures.h"

#include "qa/invariants.h"

namespace autofeat::testsupport {

std::string RankedFingerprint(const DiscoveryResult& result) {
  return qa::DiscoveryFingerprint(result);
}

DataLake MakeOrdersCustomersLake() {
  DataLake lake;
  Table orders("orders");
  orders.AddColumn("cust", Column::Int64s({1, 2, 2, 3, 1})).Abort();
  orders.AddColumn("amount", Column::Doubles({10, 20, 21, 30, 11})).Abort();
  lake.AddTable(std::move(orders)).Abort();
  Table customers("customers");
  customers.AddColumn("cust", Column::Int64s({1, 2, 3})).Abort();
  customers.AddColumn("age", Column::Doubles({31, 42, 53})).Abort();
  lake.AddTable(std::move(customers)).Abort();
  return lake;
}

qa::FuzzedLake MakeAdversarialLake(uint64_t seed, qa::LakeFuzzOptions options) {
  return qa::LakeFuzzer(options).Generate(seed);
}

}  // namespace autofeat::testsupport
