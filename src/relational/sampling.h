// Row sampling: uniform and stratified (paper §VI uses stratified sampling of
// the base table to speed up feature selection without biasing the label).

#ifndef AUTOFEAT_RELATIONAL_SAMPLING_H_
#define AUTOFEAT_RELATIONAL_SAMPLING_H_

#include <string>

#include "table/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace autofeat {

/// Uniform sample of `n` rows without replacement (all rows if n >= size).
Table SampleRows(const Table& table, size_t n, Rng* rng);

/// Stratified sample of ~`n` rows preserving the per-class proportions of
/// `label_column`. Every class present keeps at least one row. Null labels
/// form their own stratum.
Result<Table> StratifiedSample(const Table& table,
                               const std::string& label_column, size_t n,
                               Rng* rng);

/// Splits rows into train/test index sets. If `stratify_column` is non-empty,
/// the split preserves class proportions in both parts.
struct TrainTestIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
Result<TrainTestIndices> TrainTestSplit(const Table& table,
                                        double test_fraction,
                                        const std::string& stratify_column,
                                        Rng* rng);

}  // namespace autofeat

#endif  // AUTOFEAT_RELATIONAL_SAMPLING_H_
