#include "stats/relief.h"

#include <gtest/gtest.h>

namespace autofeat {
namespace {

TEST(ReliefTest, InformativeBeatsNoise) {
  Rng rng(1);
  size_t n = 200;
  std::vector<int> labels(n);
  std::vector<double> informative(n), noise(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    informative[i] = labels[i] == 1 ? rng.Normal(2, 0.5) : rng.Normal(-2, 0.5);
    noise[i] = rng.Normal(0, 1);
  }
  Rng relief_rng(2);
  auto w = ReliefScores({informative, noise}, labels, 100, &relief_rng);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[0], 0.1);
  EXPECT_NEAR(w[1], 0.0, 0.15);
}

TEST(ReliefTest, EmptyInputs) {
  Rng rng(1);
  EXPECT_TRUE(ReliefScores({}, {0, 1}, 10, &rng).empty());
  auto w = ReliefScores({{1.0}}, {0}, 10, &rng);
  EXPECT_DOUBLE_EQ(w[0], 0.0);  // Single row: no neighbours.
}

TEST(ReliefTest, SingleClassGivesZeroWeights) {
  Rng rng(3);
  std::vector<double> f{1, 2, 3, 4};
  std::vector<int> labels{1, 1, 1, 1};
  auto w = ReliefScores({f}, labels, 4, &rng);
  EXPECT_DOUBLE_EQ(w[0], 0.0);  // No misses exist.
}

TEST(ReliefTest, NanTreatedAsNeutral) {
  Rng rng(4);
  size_t n = 60;
  std::vector<int> labels(n);
  std::vector<double> feat(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    feat[i] = i % 7 == 0 ? std::nan("")
                         : (labels[i] == 1 ? 1.0 : -1.0);
  }
  auto w = ReliefScores({feat}, labels, n, &rng);
  EXPECT_GT(w[0], 0.0);  // Signal survives scattered NaNs.
}

TEST(ReliefTest, SamplingSubsetStillRanksCorrectly) {
  Rng rng(5);
  size_t n = 300;
  std::vector<int> labels(n);
  std::vector<double> good(n), bad(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i % 2);
    good[i] = labels[i] == 1 ? rng.Normal(1.5, 1) : rng.Normal(-1.5, 1);
    bad[i] = rng.Normal(0, 1);
  }
  Rng relief_rng(6);
  auto w = ReliefScores({bad, good}, labels, 40, &relief_rng);
  EXPECT_GT(w[1], w[0]);
}

}  // namespace
}  // namespace autofeat
