// Tests of the comparison methods (BASE, JoinAll, JoinAll+F, ARDA, MAB)
// and their documented structural limitations.

#include <gtest/gtest.h>

#include "baselines/arda.h"
#include "baselines/augmenter.h"
#include "baselines/autofeat_method.h"
#include "baselines/join_all.h"
#include "baselines/mab.h"
#include "datagen/lake_builder.h"
#include "ml/trainer.h"
#include "util/string_utils.h"

namespace autofeat::baselines {
namespace {

struct LakeFixture {
  datagen::BuiltLake built;
  DatasetRelationGraph drg;

  explicit LakeFixture(bool star = false) {
    datagen::LakeSpec spec;
    spec.name = "lk";
    spec.rows = 700;
    spec.joinable_tables = 6;
    spec.total_features = 24;
    spec.star_schema = star;
    spec.seed = 11;
    built = datagen::BuildLake(spec);
    drg = BuildDrgFromKfk(built.lake).MoveValue();
  }
};

TEST(BaseMethodTest, ReturnsBaseTableVerbatim) {
  LakeFixture fix;
  BaseMethod method;
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  auto base = fix.built.lake.GetTable(fix.built.base_table);
  EXPECT_TRUE(result->augmented.Equals(**base));
  EXPECT_EQ(result->tables_joined, 0u);
  EXPECT_EQ(method.name(), "BASE");
}

TEST(BaseMethodTest, MissingLabelFails) {
  LakeFixture fix;
  BaseMethod method;
  EXPECT_FALSE(method
                   .Augment(fix.built.lake, fix.drg, fix.built.base_table,
                            "ghost")
                   .ok());
}

TEST(JoinAllTest, JoinsEveryReachableTable) {
  LakeFixture fix;
  JoinAll method;
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tables_joined, 6u);
  auto base = fix.built.lake.GetTable(fix.built.base_table);
  EXPECT_EQ(result->augmented.num_rows(), (*base)->num_rows());
  EXPECT_EQ(method.name(), "JoinAll");
}

TEST(JoinAllTest, WideTableContainsDeepFeatures) {
  LakeFixture fix;
  JoinAll method;
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  // Features of the deepest tables must be present in the wide table.
  bool found_deep = false;
  for (const auto& truth : fix.built.truth) {
    if (truth.depth < 2) continue;
    for (const auto& col : result->augmented.ColumnNames()) {
      if (StartsWith(col, truth.name + "_f")) found_deep = true;
    }
  }
  EXPECT_TRUE(found_deep);
}

TEST(JoinAllFilterTest, KeepsAtMostKFeatures) {
  LakeFixture fix;
  JoinAllOptions options;
  options.filter = true;
  options.keep_features = 5;
  JoinAll method(options);
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->augmented.num_columns(), 6u);  // 5 features + label.
  EXPECT_TRUE(result->augmented.HasColumn(fix.built.label_column));
  EXPECT_GT(result->feature_selection_seconds, 0.0);
  EXPECT_EQ(method.name(), "JoinAll+F");
}

TEST(ArdaTest, OnlyJoinsDirectNeighbors) {
  LakeFixture fix;  // Snowflake: deep tables are NOT direct neighbours.
  Arda method;
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Star join: at most the number of direct neighbours.
  size_t direct =
      fix.drg.Neighbors(*fix.drg.NodeId(fix.built.base_table)).size();
  EXPECT_LE(result->tables_joined, direct);
  EXPECT_GT(result->tables_joined, 0u);
  // ARDA's augmented table must NOT contain features from depth >= 2
  // tables (its star-schema limitation, Table I).
  for (const auto& truth : fix.built.truth) {
    if (truth.depth < 2) continue;
    for (const auto& col : result->augmented.ColumnNames()) {
      EXPECT_FALSE(StartsWith(col, truth.name + "_f"))
          << "ARDA reached a transitive table: " << col;
    }
  }
}

TEST(ArdaTest, SelectsSubsetWithLabel) {
  LakeFixture fix(true);
  Arda method;
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->augmented.HasColumn(fix.built.label_column));
  EXPECT_GT(result->feature_selection_seconds, 0.0);
  EXPECT_GE(result->total_seconds, result->feature_selection_seconds);
}

TEST(ArdaTest, StarSchemaFindsRelevantFeatures) {
  LakeFixture fix(true);  // Star: the relevant tables are direct.
  Arda method;
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  auto eval = ml::TrainAndEvaluate(result->augmented,
                                   fix.built.label_column,
                                   ml::ModelKind::kLightGbm);
  ASSERT_TRUE(eval.ok());
  BaseMethod base;
  auto base_result = base.Augment(fix.built.lake, fix.drg,
                                  fix.built.base_table,
                                  fix.built.label_column);
  auto base_eval = ml::TrainAndEvaluate(base_result->augmented,
                                        fix.built.label_column,
                                        ml::ModelKind::kLightGbm);
  EXPECT_GT(eval->accuracy, base_eval->accuracy);
}

TEST(MabTest, OnlyFollowsSameNameJoins) {
  LakeFixture fix;
  Mab method;
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Mismatched-name deep links are invisible to MAB.
  for (const auto& kfk : fix.built.lake.kfk_constraints()) {
    if (kfk.from_column == kfk.to_column) continue;
    for (const auto& col : result->augmented.ColumnNames()) {
      EXPECT_FALSE(StartsWith(col, kfk.to_table + "_f"))
          << "MAB crossed a mismatched-name join: " << col;
    }
  }
  EXPECT_EQ(method.name(), "MAB");
}

TEST(MabTest, AcceptsOnlyImprovingJoins) {
  LakeFixture fix(true);
  MabOptions options;
  options.episodes = 8;
  Mab method(options);
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->tables_joined, 8u);
  EXPECT_GT(result->feature_selection_seconds, 0.0);
}

TEST(AutoFeatMethodTest, ImplementsAugmenterInterface) {
  LakeFixture fix;
  AutoFeatConfig config;
  config.sample_rows = 500;
  AutoFeatMethod method(config);
  auto result = method.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                               fix.built.label_column);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(method.name(), "AutoFeat");
  EXPECT_GT(result->tables_joined, 0u);
  EXPECT_GT(result->feature_selection_seconds, 0.0);
  EXPECT_GT(method.last_result().accuracy, 0.5);
}

TEST(ComparisonTest, AutoFeatBeatsArdaOnSnowflake) {
  // The paper's core effectiveness claim: with the strongest features
  // multi-hop away, AutoFeat's augmented table out-scores ARDA's.
  LakeFixture fix;
  AutoFeatConfig config;
  config.sample_rows = 500;
  AutoFeatMethod autofeat(config);
  Arda arda;
  auto af = autofeat.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                             fix.built.label_column);
  auto ar = arda.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                         fix.built.label_column);
  ASSERT_TRUE(af.ok());
  ASSERT_TRUE(ar.ok());
  auto af_eval = ml::TrainAndEvaluate(af->augmented, fix.built.label_column,
                                      ml::ModelKind::kLightGbm);
  auto ar_eval = ml::TrainAndEvaluate(ar->augmented, fix.built.label_column,
                                      ml::ModelKind::kLightGbm);
  ASSERT_TRUE(af_eval.ok());
  ASSERT_TRUE(ar_eval.ok());
  EXPECT_GT(af_eval->accuracy, ar_eval->accuracy + 0.03);
}

TEST(ComparisonTest, AutoFeatFeatureSelectionFasterThanArdaAndMab) {
  // The paper's efficiency claim, at small scale: AutoFeat's ranking-based
  // selection beats the model-in-the-loop baselines.
  LakeFixture fix;
  AutoFeatConfig config;
  config.sample_rows = 500;
  AutoFeatMethod autofeat(config);
  Arda arda;
  Mab mab;
  auto af = autofeat.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                             fix.built.label_column);
  auto ar = arda.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                         fix.built.label_column);
  auto mb = mab.Augment(fix.built.lake, fix.drg, fix.built.base_table,
                        fix.built.label_column);
  ASSERT_TRUE(af.ok());
  ASSERT_TRUE(ar.ok());
  ASSERT_TRUE(mb.ok());
  EXPECT_LT(af->feature_selection_seconds, ar->feature_selection_seconds);
  EXPECT_LT(af->feature_selection_seconds, mb->feature_selection_seconds);
}

}  // namespace
}  // namespace autofeat::baselines
