#include "obs/chrome_trace.h"

#include <cstdio>
#include <set>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "util/string_utils.h"

namespace autofeat::obs {
namespace {

constexpr int kPid = 1;

std::string Micros(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

void AppendCommon(std::ostringstream& out, const char* ph, double ts_seconds,
                  size_t tid) {
  out << "\"ph\": \"" << ph << "\", \"ts\": " << Micros(ts_seconds)
      << ", \"pid\": " << kPid << ", \"tid\": " << tid;
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  std::vector<SpanRecord> spans = tracer.Snapshot();
  std::vector<FlowPoint> flows = tracer.FlowSnapshot();

  // Only flows actually consumed by a worker span draw an arrow; dangling
  // starts would render as arrows into nothing.
  std::unordered_set<uint64_t> consumed;
  std::set<size_t> tids;
  for (const SpanRecord& span : spans) {
    tids.insert(span.thread);
    if (span.worker && span.flow_id != 0) consumed.insert(span.flow_id);
  }
  for (const FlowPoint& flow : flows) {
    if (consumed.count(flow.flow_id) != 0) tids.insert(flow.thread);
  }

  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    out << (first ? "  " : ",\n  ");
    first = false;
  };

  sep();
  out << "{\"name\": \"process_name\", ";
  AppendCommon(out, "M", 0.0, 0);
  out << ", \"args\": {\"name\": \"autofeat\"}}";
  for (size_t tid : tids) {
    sep();
    out << "{\"name\": \"thread_name\", ";
    AppendCommon(out, "M", 0.0, tid);
    out << ", \"args\": {\"name\": \""
        << (tid == 0 ? "orchestrator" : "worker " + std::to_string(tid))
        << "\"}}";
  }

  for (const SpanRecord& span : spans) {
    sep();
    const char* cat = span.worker ? "worker" : "phase";
    out << "{\"name\": \"" << JsonEscape(span.name) << "\", \"cat\": \""
        << cat << "\", ";
    if (span.end_seconds >= 0.0) {
      AppendCommon(out, "X", span.start_seconds, span.thread);
      double dur = span.end_seconds - span.start_seconds;
      out << ", \"dur\": " << Micros(dur < 0.0 ? 0.0 : dur);
    } else {
      AppendCommon(out, "B", span.start_seconds, span.thread);
    }
    out << ", \"args\": {\"id\": " << span.id << ", \"parent\": "
        << span.parent << "}}";
  }

  for (const FlowPoint& flow : flows) {
    if (consumed.count(flow.flow_id) == 0) continue;
    sep();
    out << "{\"name\": \"task\", \"cat\": \"flow\", \"id\": " << flow.flow_id
        << ", ";
    AppendCommon(out, "s", flow.time_seconds, flow.thread);
    out << "}";
  }
  for (const SpanRecord& span : spans) {
    if (!span.worker || span.flow_id == 0) continue;
    sep();
    out << "{\"name\": \"task\", \"cat\": \"flow\", \"id\": " << span.flow_id
        << ", \"bp\": \"e\", ";
    AppendCommon(out, "f", span.start_seconds, span.thread);
    out << "}";
  }

  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

}  // namespace autofeat::obs
