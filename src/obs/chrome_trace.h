// Chrome trace-event export.
//
// Serialises a Tracer's merged span tree (orchestration + worker spans)
// and its enqueue flow points into the Chrome trace-event JSON format, a
// file that loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Closed spans become complete ("X") events, still-open
// spans become begin ("B") events, and each enqueue -> execute hand-off
// becomes a flow-start ("s") / flow-end ("f") pair drawn as an arrow
// between threads. Every event carries ph/ts/pid/tid; tids are the
// tracer's dense thread ids.

#ifndef AUTOFEAT_OBS_CHROME_TRACE_H_
#define AUTOFEAT_OBS_CHROME_TRACE_H_

#include <string>

#include "obs/trace.h"

namespace autofeat::obs {

/// \brief The whole trace as one Chrome trace-event JSON document.
std::string ChromeTraceJson(const Tracer& tracer);

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_CHROME_TRACE_H_
