// EventLog (obs/event_log.h): JSONL validity, append ordering, field
// rendering and the deterministic (timestamp-stripped) projection.

#include "obs/event_log.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/report.h"

namespace autofeat::obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

TEST(EventLogTest, EveryLineIsValidJson) {
  EventLog log;
  log.Append("query_start", {{"query", 1}, {"base", "tbl"}});
  log.Append("query_end", {{"query", 1}, {"ok", true},
                           {"latency_ns", uint64_t{412000}}});
  log.Append("weird", {{"s", "quote \" backslash \\ newline \n done"},
                       {"f", 0.25},
                       {"neg", int64_t{-7}}});
  for (const std::string& line : Lines(log.Jsonl())) {
    EXPECT_TRUE(JsonIsValid(line)) << line;
  }
  for (const std::string& line : Lines(log.Jsonl(false))) {
    EXPECT_TRUE(JsonIsValid(line)) << line;
  }
}

TEST(EventLogTest, SequenceNumbersFollowAppendOrder) {
  EventLog log;
  EXPECT_EQ(log.Append("a"), 1u);
  EXPECT_EQ(log.Append("b"), 2u);
  EXPECT_EQ(log.Append("c"), 3u);
  EXPECT_EQ(log.size(), 3u);
  std::vector<std::string> lines = Lines(log.Jsonl());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"seq\": 1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\": 2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"seq\": 3"), std::string::npos);
}

TEST(EventLogTest, TimestampKeysFollowSuffixConvention) {
  EXPECT_TRUE(EventLog::IsTimestampKey("ts_s"));
  EXPECT_TRUE(EventLog::IsTimestampKey("latency_ns"));
  EXPECT_TRUE(EventLog::IsTimestampKey("elapsed_ms"));
  EXPECT_TRUE(EventLog::IsTimestampKey("wait_us"));
  EXPECT_FALSE(EventLog::IsTimestampKey("epoch"));
  EXPECT_FALSE(EventLog::IsTimestampKey("pairs"));
  EXPECT_FALSE(EventLog::IsTimestampKey("ns"));    // bare suffix, no stem
  EXPECT_FALSE(EventLog::IsTimestampKey("banns"));  // no underscore
}

TEST(EventLogTest, StrippedProjectionDropsExactlyTheTimestampFields) {
  EventLog log;
  log.Append("query_end", {{"query", 7},
                           {"ok", true},
                           {"latency_ns", uint64_t{5000000}},
                           {"queue_ms", 1.5}});
  std::string full = log.Jsonl();
  std::string stripped = log.Jsonl(false);
  EXPECT_NE(full.find("\"ts_s\""), std::string::npos);
  EXPECT_NE(full.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(full.find("\"queue_ms\""), std::string::npos);
  EXPECT_EQ(stripped.find("\"ts_s\""), std::string::npos);
  EXPECT_EQ(stripped.find("\"latency_ns\""), std::string::npos);
  EXPECT_EQ(stripped.find("\"queue_ms\""), std::string::npos);
  // The deterministic fields survive.
  EXPECT_NE(stripped.find("\"seq\": 1"), std::string::npos);
  EXPECT_NE(stripped.find("\"type\": \"query_end\""), std::string::npos);
  EXPECT_NE(stripped.find("\"query\": 7"), std::string::npos);
  EXPECT_NE(stripped.find("\"ok\": true"), std::string::npos);
}

TEST(EventLogTest, StrippedProjectionIsReplayStable) {
  // Two logs recording the same logical events at different wall-clock
  // moments agree byte-for-byte once timestamps are stripped.
  auto record = [](EventLog* log) {
    log->Append("mutation_apply",
                {{"mutation", 1}, {"kind", "drop"}, {"ok", true},
                 {"latency_ns", uint64_t{123456}}});
    log->Append("epoch_publish", {{"epoch", 1}, {"tables", 5}});
  };
  EventLog a;
  record(&a);
  EventLog b;
  record(&b);
  EXPECT_EQ(a.Jsonl(false), b.Jsonl(false));
  // The full serialization still carries per-log wall-clock fields.
  EXPECT_NE(a.Jsonl().find("\"ts_s\""), std::string::npos);
}

TEST(EventLogTest, ConcurrentAppendsGetUniqueContiguousSeqs) {
  EventLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append("tick", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.size(), static_cast<size_t>(kThreads * kPerThread));
  std::vector<std::string> lines = Lines(log.Jsonl());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string want = "{\"seq\": " + std::to_string(i + 1) + ",";
    EXPECT_EQ(lines[i].rfind(want, 0), 0u) << lines[i];
  }
}

TEST(EventLogTest, NullSafeAppendHelperIsANoOp) {
  EXPECT_EQ(Append(nullptr, "ignored", {{"k", 1}}), 0u);
  EventLog log;
  EXPECT_EQ(Append(&log, "kept"), 1u);
  EXPECT_EQ(log.size(), 1u);
}

}  // namespace
}  // namespace autofeat::obs
