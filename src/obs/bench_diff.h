// A/B comparison of two BENCH_*.json records (bench/harness.h schema).
//
// Timings are keyed by `phase@threads` and flagged when the current run is
// slower than baseline by more than a relative threshold *and* an absolute
// noise floor (min_seconds) — sub-10ms phases jitter too much for a pure
// ratio test. Latency quantile series from the embedded obs report
// (`metrics.quantiles`, obs/quantile.h) are gated the same way: every
// `_ns`-suffixed quantile histogram contributes `name/p50` and `name/p99`
// entries, converted to seconds, under the timing threshold + noise floor
// rule. Metrics come from the embedded obs report: deterministic
// counters/gauges are pure functions of (inputs, seed), so any drift
// between runs of the same workload is a behavioural change and is
// flagged in either direction; `.bytes` / `.bytes_peak` gauges are
// memory-regression gates and only flag on growth. Scheduling-dependent
// series (`thread_pool.*`, `process.*`) are skipped.

#ifndef AUTOFEAT_OBS_BENCH_DIFF_H_
#define AUTOFEAT_OBS_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace autofeat::obs {

struct BenchDiffOptions {
  /// Relative slowdown tolerated before a timing counts as a regression.
  double time_threshold = 0.10;
  /// Relative drift tolerated for metric values (growth-only for bytes).
  double metric_threshold = 0.10;
  /// Absolute timing noise floor: deltas below this never flag.
  double min_seconds = 0.01;
};

/// \brief One compared entry (a timing phase or a metric).
struct BenchDiffEntry {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / max(baseline, tiny); sign follows current.
  double delta_ratio = 0.0;
  bool regression = false;
};

struct BenchDiffReport {
  std::string bench;
  std::vector<BenchDiffEntry> timings;
  /// `name/pXX` latency-quantile entries (seconds), timing-gated.
  std::vector<BenchDiffEntry> quantiles;
  std::vector<BenchDiffEntry> metrics;
  /// Non-fatal observations: phases/metrics present on only one side.
  std::vector<std::string> notes;

  bool ok() const;
  size_t num_regressions() const;
  /// Human-readable table, one line per compared entry.
  std::string Summary() const;
};

/// \brief Parses and compares two BENCH_*.json documents (contents, not
/// paths). Errors on malformed JSON, missing `timings`, or mismatched
/// bench names/modes.
Result<BenchDiffReport> DiffBenchReports(const std::string& baseline_json,
                                         const std::string& current_json,
                                         const BenchDiffOptions& options = {});

}  // namespace autofeat::obs

#endif  // AUTOFEAT_OBS_BENCH_DIFF_H_
