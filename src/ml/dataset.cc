#include "ml/dataset.h"

#include <cmath>
#include <map>

#include "relational/imputation.h"

namespace autofeat::ml {

Result<Dataset> Dataset::FromTable(const Table& table,
                                   const std::string& label_column) {
  AF_ASSIGN_OR_RETURN(const Column* label_col, table.GetColumn(label_column));

  // Binary label mapping, deterministic by value order.
  std::map<std::string, int> classes;
  for (size_t i = 0; i < label_col->size(); ++i) {
    if (label_col->IsNull(i)) {
      return Status::InvalidArgument("label column contains nulls");
    }
    classes.emplace(label_col->KeyAt(i), 0);
  }
  if (classes.size() != 2) {
    return Status::InvalidArgument(
        "expected a binary label, found " + std::to_string(classes.size()) +
        " classes in " + label_column);
  }
  int next = 0;
  for (auto& [value, code] : classes) code = next++;

  Dataset ds;
  ds.labels_.reserve(label_col->size());
  for (size_t i = 0; i < label_col->size(); ++i) {
    ds.labels_.push_back(classes[label_col->KeyAt(i)]);
  }

  for (size_t c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.schema().field(c).name;
    if (name == label_column) continue;
    Column imputed = ImputeMostFrequent(table.column(c));
    std::vector<double> numeric = imputed.ToNumeric();
    for (double& v : numeric) {
      if (std::isnan(v)) v = 0.0;  // All-null columns impute to default.
    }
    ds.names_.push_back(name);
    ds.columns_.push_back(std::move(numeric));
  }
  return ds;
}

Dataset Dataset::TakeRows(const std::vector<size_t>& rows) const {
  Dataset out;
  out.names_ = names_;
  out.columns_.reserve(columns_.size());
  for (const auto& col : columns_) {
    std::vector<double> sub;
    sub.reserve(rows.size());
    for (size_t r : rows) sub.push_back(col[r]);
    out.columns_.push_back(std::move(sub));
  }
  out.labels_.reserve(rows.size());
  for (size_t r : rows) out.labels_.push_back(labels_[r]);
  return out;
}

void Dataset::AddFeature(std::string name, std::vector<double> values) {
  names_.push_back(std::move(name));
  columns_.push_back(std::move(values));
}

Dataset Dataset::SelectFeatures(
    const std::vector<size_t>& feature_indices) const {
  Dataset out;
  out.labels_ = labels_;
  for (size_t f : feature_indices) {
    out.names_.push_back(names_[f]);
    out.columns_.push_back(columns_[f]);
  }
  return out;
}

}  // namespace autofeat::ml
