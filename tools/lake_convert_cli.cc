// lake_convert_cli — convert a lake directory between on-disk formats.
//
// Usage:
//   lake_convert_cli --in DIR --out DIR --to columnar|csv
//
// Reads every table of the input directory (*.csv when converting to
// columnar, *.afc when converting to csv), writes one file per table into
// the output directory (created if missing), and verifies each written
// table reads back equal to its source before moving on — a failed
// round-trip aborts the conversion rather than leaving a silently lossy
// lake behind.

#include <cstdio>
#include <filesystem>
#include <string>

#include "discovery/data_lake.h"
#include "table/columnar.h"
#include "table/csv.h"

namespace {

using namespace autofeat;

struct CliOptions {
  std::string in_dir;
  std::string out_dir;
  std::string to;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: lake_convert_cli --in DIR --out DIR --to columnar|csv\n"
               "  --to columnar  read *.csv from --in, write *%s to --out\n"
               "  --to csv       read *%s from --in, write *.csv to --out\n"
               "Every written table is read back and compared to its source\n"
               "(cell-by-cell, nulls included) before the tool reports it.\n",
               kColumnarExtension, kColumnarExtension);
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--in") {
      const char* v = next();
      if (!v) return false;
      options->in_dir = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      options->out_dir = v;
    } else if (arg == "--to") {
      const char* v = next();
      if (!v) return false;
      options->to = v;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options->in_dir.empty() && !options->out_dir.empty() &&
         (options->to == "columnar" || options->to == "csv");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  const bool to_columnar = options.to == "columnar";

  auto lake = DataLake::FromDirectory(
      options.in_dir, to_columnar ? LakeFormat::kCsv : LakeFormat::kColumnar);
  lake.status().Abort("loading lake");
  std::printf("loaded %zu tables from %s\n", lake->num_tables(),
              options.in_dir.c_str());

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(options.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create output directory %s: %s\n",
                 options.out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  size_t total_bytes = 0;
  for (const Table& table : lake->tables()) {
    const std::string path =
        (fs::path(options.out_dir) /
         (table.name() + (to_columnar ? kColumnarExtension : ".csv")))
            .string();
    if (to_columnar) {
      WriteColumnarFile(table, path).Abort(path.c_str());
    } else {
      WriteCsvFile(table, path).Abort(path.c_str());
    }
    auto back = to_columnar ? ReadColumnarFile(path) : ReadCsvFile(path);
    back.status().Abort(path.c_str());
    if (!table.Equals(*back)) {
      std::fprintf(stderr, "round-trip mismatch for table %s (%s)\n",
                   table.name().c_str(), path.c_str());
      return 1;
    }
    total_bytes += fs::file_size(path, ec);
    std::printf("  %s: %zu rows x %zu columns -> %s\n", table.name().c_str(),
                table.num_rows(), table.num_columns(), path.c_str());
  }
  std::printf("wrote %zu tables (%zu bytes) to %s\n", lake->num_tables(),
              total_bytes, options.out_dir.c_str());
  return 0;
}
