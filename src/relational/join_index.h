// Factorized (late-materialization) join primitives.
//
// A cardinality-normalised left join (join.h) is fully determined by a
// per-key representative row on the right plus a left-row -> right-row
// mapping. This header exposes that decomposition: a JoinKeyIndex interns a
// right key column once (KeyDictionary) and fixes one deterministic
// representative row per key; MapLeftJoin probes it into a compact row
// mapping; the Gather* helpers then score completeness and build numeric
// feature views straight through the mapping, materialising an actual
// joined Table only when a caller really needs one (LeftJoinWithIndex).
//
// The representative picks are a pure function of (column contents,
// rep_seed), so any number of threads probing a shared index — and any
// interleaving of cache builds — produces byte-identical results.

#ifndef AUTOFEAT_RELATIONAL_JOIN_INDEX_H_
#define AUTOFEAT_RELATIONAL_JOIN_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/join.h"
#include "table/key_dictionary.h"
#include "table/table.h"
#include "util/status.h"

namespace autofeat {

/// Sentinel right-row for unmatched left rows in a JoinRowMap.
inline constexpr uint32_t kNoMatchRow = static_cast<uint32_t>(-1);

/// \brief Interned hash index over one (right-side) key column: the key
/// dictionary plus one deterministic representative row per key (§IV-B
/// cardinality normalisation, with the pick derived from `rep_seed` instead
/// of a caller-supplied generator).
struct JoinKeyIndex {
  KeyDictionary dict;
  /// One right row per key id (the normalised join partner).
  std::vector<uint32_t> representative;

  size_t num_distinct_keys() const { return representative.size(); }

  /// Approximate heap footprint in bytes (dictionary + representatives);
  /// size-based and deterministic like KeyDictionary::ApproxBytes.
  size_t ApproxBytes() const {
    return dict.ApproxBytes() + representative.size() * sizeof(uint32_t);
  }
};

/// Builds the index of `key`. Representatives are drawn from
/// Rng(rep_seed), one pick per duplicated key in first-seen key order —
/// the same stream discipline NormalizeJoinCardinality uses.
JoinKeyIndex BuildJoinKeyIndex(const Column& key, uint64_t rep_seed);

/// \brief A composed left-join row mapping: output row i of the join reads
/// left row i and right row `right_rows[i]` (kNoMatchRow when unmatched).
struct JoinRowMap {
  std::vector<uint32_t> right_rows;
  JoinStats stats;
};

/// Probes every row of `left_key` against the index (cardinality-normalised
/// left join: at most one right row per left row, in left order).
JoinRowMap MapLeftJoin(const Column& left_key, const JoinKeyIndex& index);

/// Materialises `src` gathered through the mapping (null where unmatched).
Column GatherColumn(const Column& src, const std::vector<uint32_t>& rows);

/// Null count of `src` gathered through the mapping, without materialising:
/// unmatched rows plus right-side nulls. Equals
/// GatherColumn(src, rows).null_count().
size_t GatherNullCount(const Column& src, const std::vector<uint32_t>& rows);

/// Numeric view of `src` gathered through the mapping, without
/// materialising. Equals GatherColumn(src, rows).ToNumeric() — including
/// the first-occurrence ordinal encoding of string columns, which is
/// assigned in output (left) row order. All-valid double columns take a
/// branch-free SIMD masked-gather path; everything else falls back to the
/// scalar reference.
std::vector<double> GatherNumeric(const Column& src,
                                  const std::vector<uint32_t>& rows);

/// Scalar references of the two gather kernels above, kept for differential
/// testing (tests/kernels_test.cc) — bit-identical to the SIMD paths on
/// every input, including the NaN fill of unmatched rows.
std::vector<double> GatherNumericReference(const Column& src,
                                           const std::vector<uint32_t>& rows);
size_t GatherNullCountReference(const Column& src,
                                const std::vector<uint32_t>& rows);

/// The column names Join would give `right`'s columns when appending them to
/// `left` (collision suffixes included), without performing the join.
std::vector<std::string> ResolveAppendedNames(const Table& left,
                                              const Table& right);

/// Cardinality-normalised left join through a prebuilt index: output equals
/// LeftJoin(left, left_key, right, ...) except that the per-key
/// representative comes from the index (deterministic, shareable across
/// callers) instead of a caller-supplied Rng. `index` must have been built
/// over `right`'s join column.
Result<JoinResult> LeftJoinWithIndex(const Table& left,
                                     const std::string& left_key,
                                     const Table& right,
                                     const JoinKeyIndex& index);

}  // namespace autofeat

#endif  // AUTOFEAT_RELATIONAL_JOIN_INDEX_H_
