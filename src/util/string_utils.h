// Small string helpers shared across modules (CSV parsing, schema matching).

#ifndef AUTOFEAT_UTIL_STRING_UTILS_H_
#define AUTOFEAT_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace autofeat {

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// Removes leading/trailing whitespace.
std::string Trim(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins strings with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Levenshtein edit distance (two-row rolling dynamic programming,
/// O(|a|*|b|) time, O(min-side) space).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with a cutoff: returns the exact distance when it
/// is <= max_dist, and otherwise some lower bound on the distance that
/// still exceeds max_dist. Two shortcuts make it cheaper than the full DP
/// when the answer does not matter precisely: the length difference alone
/// can prove the cutoff unreachable before any DP work, and the DP row
/// minimum — a lower bound on every later entry — aborts the fill as soon
/// as it passes max_dist.
size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                  size_t max_dist);

/// Normalised Levenshtein similarity in [0, 1]: 1 - dist / max_len.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Levenshtein similarity with a floor: returns the exact similarity when
/// it is >= floor_sim, and otherwise some value that is still < floor_sim
/// (an upper bound on the true similarity). Callers that only consume
/// max(other_evidence, leven_sim) pass floor_sim = other_evidence and skip
/// most of the DP whenever names are clearly dissimilar.
double BoundedLevenshteinSimilarity(std::string_view a, std::string_view b,
                                    double floor_sim);

/// The multiset of character q-grams of `s` (padded with '#'), sorted.
std::vector<std::string> QGrams(std::string_view s, size_t q);

/// Jaccard similarity of the q-gram sets of `a` and `b`.
double QGramJaccard(std::string_view a, std::string_view b, size_t q = 3);

/// Formats a double with fixed precision (for table printers).
std::string FormatDouble(double v, int precision = 3);

/// Escapes `s` for embedding inside a JSON string literal: backslash,
/// double quote, and control characters (\b \f \n \r \t, \u00XX for the
/// rest). Other bytes pass through unchanged.
std::string JsonEscape(std::string_view s);

}  // namespace autofeat

#endif  // AUTOFEAT_UTIL_STRING_UTILS_H_
