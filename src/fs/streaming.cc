#include "fs/streaming.h"

#include <utility>

namespace autofeat {

void StreamingFeatureSelector::SeedWithBaseFeatures(const FeatureView& view) {
  for (size_t f = 0; f < view.num_features(); ++f) {
    if (!selected_.Contains(view.name(f))) {
      selected_.Add(view.name(f), view.codes(f));
    }
  }
}

std::vector<FeatureScore> StreamingFeatureSelector::ScoreBatchRelevance(
    const FeatureView& view,
    const std::vector<size_t>& new_feature_indices) const {
  // Relevance stage: rank the incoming features, keep the top-kappa.
  if (options_.use_relevance) {
    std::vector<FeatureScore> scores =
        ScoreRelevance(view, new_feature_indices, options_.relevance);
    return SelectKBest(std::move(scores), options_.relevance.top_k,
                       options_.relevance.min_score);
  }
  std::vector<FeatureScore> relevant;
  relevant.reserve(new_feature_indices.size());
  for (size_t f : new_feature_indices) {
    relevant.push_back({view.name(f), 0.0});
  }
  return relevant;
}

StreamingFeatureSelector::BatchResult StreamingFeatureSelector::CommitBatch(
    const FeatureView& view, std::vector<FeatureScore> relevant) {
  BatchResult result;
  result.relevant = std::move(relevant);
  if (result.relevant.empty()) return result;  // All irrelevant.

  // Redundancy stage: screen the relevant subset against R_sel.
  std::vector<size_t> candidate_indices;
  candidate_indices.reserve(result.relevant.size());
  for (const auto& fs : result.relevant) {
    auto idx = view.FeatureIndex(fs.name);
    if (idx.has_value()) candidate_indices.push_back(*idx);
  }
  if (options_.use_redundancy) {
    result.selected = SelectNonRedundant(view, candidate_indices, &selected_,
                                         options_.redundancy);
  } else {
    // Ablation: accept every relevant feature, mirroring its relevance score.
    for (size_t i = 0; i < candidate_indices.size(); ++i) {
      const auto& fs = result.relevant[i];
      if (selected_.Contains(fs.name)) continue;
      result.selected.push_back(fs);
      selected_.Add(fs.name, view.codes(candidate_indices[i]));
    }
  }
  return result;
}

StreamingFeatureSelector::BatchResult StreamingFeatureSelector::ProcessBatch(
    const FeatureView& view, const std::vector<size_t>& new_feature_indices) {
  return CommitBatch(view, ScoreBatchRelevance(view, new_feature_indices));
}

}  // namespace autofeat
