#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

#include "util/simd.h"

namespace autofeat::ml {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Newton gain of a candidate child with gradient sum g and hessian sum h.
double LeafGain(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

void FeatureBinner::Fit(const Dataset& data, int max_bins) {
  edges_.assign(data.num_features(), {});
  for (size_t f = 0; f < data.num_features(); ++f) {
    std::vector<double> values = data.column(f);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() <= 1) continue;  // Constant: single bin, no edges.
    size_t bins = std::min<size_t>(static_cast<size_t>(max_bins),
                                   values.size());
    std::vector<double>& edges = edges_[f];
    if (values.size() <= bins) {
      // One bin per distinct value: edges at midpoints.
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        edges.push_back((values[i] + values[i + 1]) / 2.0);
      }
    } else {
      for (size_t b = 1; b < bins; ++b) {
        size_t idx = b * values.size() / bins;
        double edge = (values[idx - 1] + values[idx]) / 2.0;
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
  }
}

uint8_t FeatureBinner::Bin(size_t feature, double value) const {
  const std::vector<double>& edges = edges_[feature];
  // First edge >= value; values above all edges land in the last bin.
  auto it = std::lower_bound(edges.begin(), edges.end(), value);
  return static_cast<uint8_t>(it - edges.begin());
}

std::vector<std::vector<uint8_t>> FeatureBinner::BinAll(
    const Dataset& data) const {
  std::vector<std::vector<uint8_t>> out(data.num_features());
  for (size_t f = 0; f < data.num_features(); ++f) {
    const std::vector<double>& col = data.column(f);
    out[f].resize(col.size());
    for (size_t r = 0; r < col.size(); ++r) out[f][r] = Bin(f, col[r]);
  }
  return out;
}

Status Gbdt::Fit(const Dataset& train) {
  size_t n = train.num_rows();
  if (n == 0) return Status::InvalidArgument("empty training set");
  num_features_ = train.num_features();
  importances_.assign(num_features_, 0.0);
  trees_.clear();

  binner_.Fit(train, options_.max_bins);
  std::vector<std::vector<uint8_t>> binned = binner_.BinAll(train);

  // Base score: log-odds of the positive rate.
  double positives = 0;
  for (size_t r = 0; r < n; ++r) positives += train.label(r);
  double rate = std::clamp(positives / static_cast<double>(n), 1e-6, 1 - 1e-6);
  base_score_ = std::log(rate / (1.0 - rate));

  std::vector<double> score(n, base_score_);
  std::vector<double> grad(n), hess(n);
  Rng rng(options_.seed);

  for (size_t round = 0; round < options_.num_rounds; ++round) {
    for (size_t r = 0; r < n; ++r) {
      double p = Sigmoid(score[r]);
      grad[r] = p - static_cast<double>(train.label(r));
      hess[r] = std::max(p * (1.0 - p), 1e-12);
    }

    // Row subsampling.
    std::vector<size_t> rows;
    if (options_.subsample < 1.0) {
      rows.reserve(static_cast<size_t>(options_.subsample * n) + 1);
      for (size_t r = 0; r < n; ++r) {
        if (rng.Bernoulli(options_.subsample)) rows.push_back(r);
      }
      if (rows.empty()) rows.push_back(rng.UniformIndex(n));
    } else {
      rows.resize(n);
      for (size_t r = 0; r < n; ++r) rows[r] = r;
    }

    // Feature subsampling.
    std::vector<size_t> features(num_features_);
    for (size_t f = 0; f < num_features_; ++f) features[f] = f;
    if (options_.feature_fraction < 1.0 && num_features_ > 1) {
      rng.Shuffle(&features);
      // Ceil like LightGBM: a 0.9 fraction of 2 features keeps 2, not 1.
      size_t keep = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(
                 options_.feature_fraction *
                 static_cast<double>(num_features_))));
      features.resize(keep);
    }

    Tree tree;
    BuildTree(binned, grad, hess, rows, features, &tree);
    // Update scores with the new tree's predictions (over *all* rows).
    for (size_t r = 0; r < n; ++r) {
      int node = 0;
      while (tree.nodes[node].feature >= 0) {
        const Node& nd = tree.nodes[node];
        node = binned[static_cast<size_t>(nd.feature)][r] <= nd.bin
                   ? nd.left
                   : nd.right;
      }
      score[r] += tree.nodes[node].value;
    }
    trees_.push_back(std::move(tree));
  }

  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0) {
    for (double& v : importances_) v /= total;
  }
  return Status::OK();
}

void Gbdt::BuildTree(const std::vector<std::vector<uint8_t>>& binned,
                     const std::vector<double>& grad,
                     const std::vector<double>& hess,
                     const std::vector<size_t>& rows,
                     const std::vector<size_t>& features, Tree* tree) {
  std::vector<size_t> mutable_rows = rows;
  BuildNode(binned, grad, hess, mutable_rows, features, 0, tree);
}

int Gbdt::BuildNode(const std::vector<std::vector<uint8_t>>& binned,
                    const std::vector<double>& grad,
                    const std::vector<double>& hess,
                    std::vector<size_t>& rows,
                    const std::vector<size_t>& features, int depth,
                    Tree* tree) {
  int index = static_cast<int>(tree->nodes.size());
  tree->nodes.emplace_back();

  double g_total = 0, h_total = 0;
  for (size_t r : rows) {
    g_total += grad[r];
    h_total += hess[r];
  }
  // Newton leaf weight, scaled by the learning rate.
  tree->nodes[index].value =
      -options_.learning_rate * g_total / (h_total + options_.lambda);

  if (depth >= options_.max_depth || rows.size() < 2) return index;

  // Histogram scan: best (feature, bin) split by Newton gain.
  double parent_gain = LeafGain(g_total, h_total, options_.lambda);
  double best_gain = 1e-9;
  int best_feature = -1;
  uint8_t best_bin = 0;

  // Interleaved (grad, hess) histogram: both accumulators of a bin share a
  // cache line, and the unrolled kernel overlaps the row/code loads with the
  // dependent adds. Bit-exact against the separate-array form (adds hit each
  // bin in row order either way); see simd::AccumulateGhReference.
  std::vector<double> gh;
  for (size_t f : features) {
    size_t nbins = binner_.num_bins(f);
    if (nbins <= 1) continue;
    gh.assign(2 * nbins, 0.0);
    const std::vector<uint8_t>& codes = binned[f];
    simd::AccumulateGh(codes.data(), grad.data(), hess.data(), rows.data(),
                       rows.size(), gh.data());
    double gl = 0, hl = 0;
    for (size_t b = 0; b + 1 < nbins; ++b) {
      gl += gh[2 * b];
      hl += gh[2 * b + 1];
      double gr = g_total - gl;
      double hr = h_total - hl;
      if (hl < options_.min_child_weight || hr < options_.min_child_weight) {
        continue;
      }
      double gain = LeafGain(gl, hl, options_.lambda) +
                    LeafGain(gr, hr, options_.lambda) - parent_gain;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_bin = static_cast<uint8_t>(b);
      }
    }
  }
  if (best_feature < 0) return index;

  importances_[static_cast<size_t>(best_feature)] += best_gain;

  const std::vector<uint8_t>& codes = binned[static_cast<size_t>(best_feature)];
  auto mid = std::partition(rows.begin(), rows.end(), [&](size_t r) {
    return codes[r] <= best_bin;
  });
  std::vector<size_t> left_rows(rows.begin(), mid);
  std::vector<size_t> right_rows(mid, rows.end());
  if (left_rows.empty() || right_rows.empty()) return index;

  tree->nodes[index].feature = best_feature;
  tree->nodes[index].bin = best_bin;
  int left =
      BuildNode(binned, grad, hess, left_rows, features, depth + 1, tree);
  tree->nodes[index].left = left;
  int right =
      BuildNode(binned, grad, hess, right_rows, features, depth + 1, tree);
  tree->nodes[index].right = right;
  return index;
}

double Gbdt::PredictRaw(const Dataset& data, size_t row) const {
  double score = base_score_;
  for (const auto& tree : trees_) {
    int node = 0;
    while (tree.nodes[node].feature >= 0) {
      const Node& nd = tree.nodes[node];
      uint8_t bin = binner_.Bin(static_cast<size_t>(nd.feature),
                                data.at(row, static_cast<size_t>(nd.feature)));
      node = bin <= nd.bin ? nd.left : nd.right;
    }
    score += tree.nodes[node].value;
  }
  return score;
}

double Gbdt::PredictProba(const Dataset& data, size_t row) const {
  return Sigmoid(PredictRaw(data, row));
}

std::vector<double> Gbdt::FeatureImportances() const { return importances_; }

}  // namespace autofeat::ml
