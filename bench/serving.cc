// AutoFeat-as-a-service: incremental DRG maintenance vs cold rebuilds,
// plus a YCSB-style mixed mutation/query driver.
//
// Builds a 200-table pod lake (datagen::BuildScaleLake) plus a labelled
// query base table, stands up a LakeService (kLsh candidate mode), then:
//
//  1. Gate phase (sequential, exported registry): applies a rotating
//     add/append/drop mutation sequence. After every mutation the
//     service's incrementally maintained DRG must be byte-identical to a
//     cold BuildDrgByDiscovery over the same lake state, and the summed
//     incremental maintenance time must be at least 5x faster than the
//     summed cold rebuilds. A final Discover on the mutated service must
//     match a cold service built at the final state.
//  2. YCSB-style workloads (separate, unexported service): A (50/50
//     mutation/query), B (95/5 read-heavy) and C (read-only), each with 4
//     reader threads + 1 mutator, reporting per-op p50/p99 latency and
//     wall time in the autofeat.bench.v1 timings (CI diffs them with an
//     absolute --min-seconds noise floor; latency phases sit below it).
//
// Self-gating: exits non-zero on any fingerprint divergence or when the
// incremental speedup falls under 5x. Quick mode shrinks rows and op
// counts; AUTOFEAT_BENCH_MODE=full scales them up.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness.h"
#include "datagen/scale_lake.h"
#include "obs/metrics.h"
#include "qa/invariants.h"
#include "serve/lake_service.h"
#include "serve/mutation.h"
#include "table/column.h"
#include "util/rng.h"
#include "util/timer.h"

namespace autofeat::benchx {
namespace {

constexpr const char* kBaseTable = "bench_base";
constexpr const char* kLabelColumn = "label";

// The labelled query entry point: joins into pod 0 via its key domain.
Table MakeQueryBase(size_t rows) {
  Table base(kBaseTable);
  Column key(DataType::kInt64);
  Column label(DataType::kInt64);
  for (size_t i = 0; i < rows; ++i) {
    key.AppendInt64(static_cast<int64_t>(i));
    label.AppendInt64(static_cast<int64_t>(i % 2));
  }
  base.AddColumn("key_p0", std::move(key)).Abort();
  base.AddColumn(kLabelColumn, std::move(label)).Abort();
  return base;
}

// A fresh table joinable into pod `pod` (same key domain and column name).
Table MakeAddedTable(size_t index, size_t pod, size_t rows) {
  Rng rng(DeriveSeed(4242, index));
  Table table("mut" + std::to_string(index));
  Column key(DataType::kInt64);
  const int64_t base = static_cast<int64_t>(pod * rows);
  for (size_t i = 0; i < rows; ++i) {
    key.AppendInt64(base + static_cast<int64_t>(i));
  }
  table.AddColumn("key_p" + std::to_string(pod), std::move(key)).Abort();
  for (size_t m = 0; m < 2; ++m) {
    Column feature(DataType::kDouble);
    for (size_t i = 0; i < rows; ++i) feature.AppendDouble(rng.Normal());
    table
        .AddColumn("mv" + std::to_string(index) + "_" + std::to_string(m),
                   std::move(feature))
        .Abort();
  }
  return table;
}

// Rows matching `current`'s exact schema (append payloads must).
Table MakeAppendRows(const Table& current, uint64_t seed, size_t rows) {
  Rng rng(seed);
  Table payload(current.name());
  for (size_t c = 0; c < current.num_columns(); ++c) {
    const Field& field = current.schema().field(c);
    Column col(field.type);
    for (size_t r = 0; r < rows; ++r) {
      switch (field.type) {
        case DataType::kInt64:
          col.AppendInt64(rng.UniformInt(0, 1 << 20));
          break;
        case DataType::kDouble:
          col.AppendDouble(rng.Normal());
          break;
        default:
          col.AppendString("s" + std::to_string(rng.UniformIndex(97)));
          break;
      }
    }
    payload.AddColumn(field.name, std::move(col)).Abort();
  }
  return payload;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size()));
  return samples[std::min(index, samples.size() - 1)];
}

std::string QueryFingerprint(serve::LakeService* service) {
  auto out = service->Discover(kBaseTable, kLabelColumn);
  out.status().Abort("serving discover");
  return qa::DiscoveryFingerprint(out->discovery);
}

struct WorkloadStats {
  std::vector<double> query_seconds;
  std::vector<double> mutation_seconds;
  double wall_seconds = 0.0;
};

// `queries` Discover calls split over `readers` threads, racing one
// mutator applying `mutations` schema-preserving appends.
WorkloadStats RunWorkload(serve::LakeService* service, size_t queries,
                          size_t mutations, size_t readers) {
  WorkloadStats stats;
  std::mutex mu;
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(readers);
  const size_t per_reader = readers > 0 ? queries / readers : 0;
  for (size_t r = 0; r < readers; ++r) {
    size_t count = per_reader + (r < queries % readers ? 1 : 0);
    threads.emplace_back([service, count, &mu, &stats] {
      std::vector<double> local;
      local.reserve(count);
      for (size_t q = 0; q < count; ++q) {
        Timer timer;
        auto out = service->Discover(kBaseTable, kLabelColumn);
        out.status().Abort("workload query");
        local.push_back(timer.ElapsedSeconds());
      }
      std::lock_guard<std::mutex> lock(mu);
      stats.query_seconds.insert(stats.query_seconds.end(), local.begin(),
                                 local.end());
    });
  }
  for (size_t m = 0; m < mutations; ++m) {
    serve::LakeService::SnapshotPin snap = service->snapshot();
    const std::string target = "pod" + std::to_string(m % 8) + "_t1";
    const Table* current = snap->lake.GetTable(target).ValueOrDie();
    Table rows = MakeAppendRows(*current, DeriveSeed(777, m), 4);
    Timer timer;
    service->AppendRows(target, rows).status().Abort("workload mutation");
    stats.mutation_seconds.push_back(timer.ElapsedSeconds());
  }
  for (std::thread& t : threads) t.join();
  stats.wall_seconds = wall.ElapsedSeconds();
  return stats;
}

int Main() {
  datagen::ScaleLakeSpec spec;
  spec.num_tables = 200;
  spec.rows = FullMode() ? 120 : 80;  // above the LSH small-column rescue
  spec.features_per_table = 2;
  spec.seed = 42;
  DataLake lake = datagen::BuildScaleLake(spec);
  lake.AddTable(MakeQueryBase(spec.rows)).Abort();

  serve::ServeOptions options;
  options.match.candidate_mode = CandidateMode::kLsh;
  options.config.seed = 42;
  options.config.num_threads = 1;  // gate phase: sequential, deterministic
  obs::MetricsRegistry metrics;

  Timer create_timer;
  auto service_result = serve::LakeService::Create(lake, options, &metrics);
  service_result.status().Abort("serving create");
  std::unique_ptr<serve::LakeService> service = service_result.MoveValue();
  const double create_seconds = create_timer.ElapsedSeconds();
  std::printf("serving: %zu tables, service up in %.3fs\n", lake.num_tables(),
              create_seconds);

  // ---- Gate phase: incremental maintenance vs cold rebuild per mutation --
  int failures = 0;
  const size_t kMutations = FullMode() ? 21 : 12;
  double incremental_seconds = 0.0;
  double cold_seconds = 0.0;
  for (size_t i = 0; i < kMutations; ++i) {
    serve::LakeMutation mutation;
    switch (i % 3) {
      case 0:
        mutation.kind = serve::LakeMutation::Kind::kAddTable;
        mutation.payload = MakeAddedTable(i, /*pod=*/1 + i % 7, spec.rows);
        break;
      case 1: {
        mutation.kind = serve::LakeMutation::Kind::kAppendRows;
        mutation.table = "pod" + std::to_string(i % 16) + "_t2";
        const Table* current =
            service->snapshot()->lake.GetTable(mutation.table).ValueOrDie();
        mutation.payload = MakeAppendRows(*current, DeriveSeed(999, i), 6);
        break;
      }
      default:
        // Drops the table added two mutations earlier.
        mutation.kind = serve::LakeMutation::Kind::kDropTable;
        mutation.table = "mut" + std::to_string(i - 2);
        break;
    }
    Timer inc_timer;
    service->Apply(mutation).status().Abort("gate mutation");
    incremental_seconds += inc_timer.ElapsedSeconds();

    serve::LakeService::SnapshotPin snap = service->snapshot();
    Timer cold_timer;
    auto cold_drg = BuildDrgByDiscovery(snap->lake, options.match);
    cold_drg.status().Abort("cold rebuild");
    cold_seconds += cold_timer.ElapsedSeconds();
    if (snap->drg.OrderedFingerprint() != cold_drg->OrderedFingerprint()) {
      std::fprintf(stderr,
                   "FAIL: DRG diverged from the cold rebuild after mutation "
                   "%zu (%s)\n",
                   i, serve::MutationSummary(mutation).c_str());
      ++failures;
    }
  }
  const double speedup =
      incremental_seconds > 0 ? cold_seconds / incremental_seconds : 0.0;
  std::printf(
      "  %zu mutations: incremental %.3fs total, cold rebuilds %.3fs total "
      "(%.1fx)\n",
      kMutations, incremental_seconds, cold_seconds, speedup);
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: incremental maintenance only %.1fx faster than cold "
                 "rebuilds (gate: 5x)\n",
                 speedup);
    ++failures;
  }

  // Query equivalence at the final state: the mutated service vs a service
  // built cold over the same lake.
  {
    auto cold_service =
        serve::LakeService::Create(service->snapshot()->lake, options);
    cold_service.status().Abort("cold service");
    if (QueryFingerprint(service.get()) !=
        QueryFingerprint(cold_service->get())) {
      std::fprintf(stderr,
                   "FAIL: Discover output diverged between the mutated "
                   "service and a cold service\n");
      ++failures;
    }
  }

  std::vector<BenchTiming> timings;
  timings.push_back({"service_create", 1, create_seconds});
  timings.push_back({"mutation_incremental_total", 1, incremental_seconds});
  timings.push_back({"mutation_cold_rebuild_total", 1, cold_seconds});

  // ---- YCSB-style workloads (fresh unexported service; 4 readers + 1
  // mutator; latencies land in the timings under the CI noise floor) ------
  struct Workload {
    const char* label;
    size_t queries;
    size_t mutations;
  };
  const size_t ops = FullMode() ? 400 : 48;
  const Workload workloads[] = {
      {"ycsb_a", ops / 2, ops / 2},              // 50/50 update-heavy
      {"ycsb_b", ops - ops / 20, ops / 20},      // 95/5 read-heavy
      {"ycsb_c", ops, 0},                        // read-only
  };
  for (const Workload& w : workloads) {
    auto fresh = serve::LakeService::Create(service->snapshot()->lake, options);
    fresh.status().Abort("workload service");
    WorkloadStats stats =
        RunWorkload(fresh->get(), w.queries, w.mutations, /*readers=*/4);
    const double throughput =
        stats.wall_seconds > 0
            ? static_cast<double>(w.queries + w.mutations) / stats.wall_seconds
            : 0.0;
    std::printf(
        "  %s: %zu queries + %zu mutations in %.3fs (%.0f ops/s), query "
        "p50 %.1fms p99 %.1fms\n",
        w.label, w.queries, w.mutations, stats.wall_seconds, throughput,
        Percentile(stats.query_seconds, 0.50) * 1e3,
        Percentile(stats.query_seconds, 0.99) * 1e3);
    timings.push_back({std::string(w.label) + "_wall", 4, stats.wall_seconds});
    timings.push_back({std::string(w.label) + "_query_p50", 4,
                       Percentile(stats.query_seconds, 0.50)});
    timings.push_back({std::string(w.label) + "_query_p99", 4,
                       Percentile(stats.query_seconds, 0.99)});
    if (w.mutations > 0) {
      timings.push_back({std::string(w.label) + "_mutation_p50", 1,
                         Percentile(stats.mutation_seconds, 0.50)});
      timings.push_back({std::string(w.label) + "_mutation_p99", 1,
                         Percentile(stats.mutation_seconds, 0.99)});
    }
  }

  WriteBenchJson("serving", timings, &metrics);
  if (failures > 0) {
    std::fprintf(stderr, "serving: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("serving: all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace autofeat::benchx

int main() { return autofeat::benchx::Main(); }
